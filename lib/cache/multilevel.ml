type cac = Always | Never | Uncertain

type access_info = {
  instr : int;
  kind : Analysis.kind;
  target : Analysis.target;
  cac : cac;
  l2_class : Analysis.classification;
  must_ages : (int * int option) list;
  pers_ages : (int * int option) list;
}

type t = {
  config : Config.t;
  infos : access_info list;  (** instruction order *)
  by_instr : (int * Analysis.kind, access_info) Hashtbl.t;
  unknown_target : bool;
  bypass : int -> bool;
}

let cac_of_l1 l1 (a : Analysis.access) =
  match Analysis.classification l1 ~kind:a.Analysis.kind a.Analysis.instr with
  | Analysis.Always_hit -> Never
  | Analysis.Always_miss -> Always
  | Analysis.Persistent | Analysis.Not_classified -> Uncertain
  | exception Not_found -> Always

let target_bypassed bypass = function
  | Analysis.Lines ls -> List.for_all bypass ls
  | Analysis.Unknown -> false

let apply_l2 bypass acs ((a : Analysis.access), cac) =
  if target_bypassed bypass a.target then acs
  else
    let updated =
      match a.target with
      | Analysis.Lines ls ->
          (* Partially bypassed candidate sets: non-bypassed lines update. *)
          let live = List.filter (fun l -> not (bypass l)) ls in
          if live = [] then acs else Acs.access_one_of acs live
      | Analysis.Unknown -> Acs.access_unknown acs
    in
    match cac with
    | Always -> updated
    | Never -> acs
    | Uncertain -> Acs.join updated acs

(* Persistence step at L2, guided by the L2 must state (advanced in
   tandem with the same CAC decisions). *)
let apply_l2_pers bypass (must, pers) ((a : Analysis.access), cac) =
  let must' = apply_l2 bypass must (a, cac) in
  let pers' =
    if target_bypassed bypass a.target then pers
    else
      let updated =
        match a.target with
        | Analysis.Lines ls ->
            let live = List.filter (fun l -> not (bypass l)) ls in
            if live = [] then pers
            else Acs.access_one_of_guided pers ~must live
        | Analysis.Unknown -> Acs.access_unknown pers
      in
      match cac with
      | Always -> updated
      | Never -> pers
      | Uncertain -> Acs.join updated pers
  in
  (must', pers')

let pers_fixpoint_l2 config g ~entry ~tagged ~had_call bypass ~must_ins =
  let entry_state =
    match entry with
    | Analysis.Cold | Analysis.Unknown_entry -> Acs.empty config Acs.Pers
  in
  let transfer id pers =
    let _, pers =
      List.fold_left (apply_l2_pers bypass) (must_ins.(id), pers) tagged.(id)
    in
    if had_call.(id) then Acs.havoc pers else pers
  in
  let ins, outs =
    Dataflow.Worklist.solve g
      ~name:(Analysis.fixpoint_name "l2" Acs.Pers)
      ~entry_fact:entry_state ~join:Acs.join ~equal:Acs.equal ~transfer
      ~on_round:Analysis.count_fixpoint_iteration ()
  in
  let force = function Some x -> x | None -> entry_state in
  (Array.map force ins, Array.map force outs)

let fixpoint_l2 config g ~entry ~tagged ~had_call bypass kind =
  let entry_state =
    match (entry, kind) with
    | Analysis.Cold, _ -> Acs.empty config kind
    | Analysis.Unknown_entry, Acs.May -> Acs.havoc (Acs.empty config kind)
    | Analysis.Unknown_entry, (Acs.Must | Acs.Pers) -> Acs.empty config kind
  in
  let transfer id acs =
    let acs = List.fold_left (apply_l2 bypass) acs tagged.(id) in
    if had_call.(id) then Acs.havoc acs else acs
  in
  let ins, outs =
    Dataflow.Worklist.solve g ~name:(Analysis.fixpoint_name "l2" kind)
      ~entry_fact:entry_state ~join:Acs.join ~equal:Acs.equal ~transfer
      ~on_round:Analysis.count_fixpoint_iteration ()
  in
  let force = function Some x -> x | None -> entry_state in
  (Array.map force ins, Array.map force outs)

let ages_of config acs target =
  match (target : Analysis.target) with
  | Analysis.Unknown -> []
  | Analysis.Lines ls ->
      ignore config;
      List.map (fun l -> (l, Acs.age_of_line acs l)) ls

let analyze config g ~entry ~cac_of ~l2_accesses ?(bypass = fun _ -> false)
    () =
  let n = Cfg.Graph.num_blocks g in
  let accesses_of = Array.init n l2_accesses in
  let had_call =
    Array.init n (fun id -> Cfg.Graph.callee_of_block g id <> None)
  in
  let tagged =
    Array.map
      (List.map (fun (a : Analysis.access) -> (a, cac_of a)))
      accesses_of
  in
  let must_ins, _ =
    fixpoint_l2 config g ~entry ~tagged ~had_call bypass Acs.Must
  in
  let may_ins, _ =
    fixpoint_l2 config g ~entry ~tagged ~had_call bypass Acs.May
  in
  let pers_ins, _ =
    pers_fixpoint_l2 config g ~entry ~tagged ~had_call bypass ~must_ins
  in
  let infos = ref [] in
  for id = 0 to n - 1 do
    let rec replay must may pers = function
      | [] -> ()
      | ((a : Analysis.access), cac) :: rest ->
          let l2_class =
            if cac = Never then Analysis.Always_hit
            else if target_bypassed bypass a.target then Analysis.Always_miss
            else
              (* Reuse the single-level classifier on the L2 states. *)
              let classify_one =
                let assoc = config.Config.assoc in
                match a.target with
                | Analysis.Unknown -> Analysis.Not_classified
                | Analysis.Lines ls ->
                    let live = List.filter (fun l -> not (bypass l)) ls in
                    if live = [] then Analysis.Always_miss
                    else if
                      List.for_all (fun l -> Acs.contains_line must l) live
                    then Analysis.Always_hit
                    else if
                      List.for_all
                        (fun l ->
                          (not (Acs.contains_line may l))
                          && not
                               (Acs.universe may
                                  ~set:(Config.set_of_line config l)))
                        live
                    then Analysis.Always_miss
                    else
                      let persistent =
                        match live with
                        | [ l ] -> (
                            match Acs.age_of_line pers l with
                            | Some age -> age < assoc
                            | None -> false)
                        | _ -> false
                      in
                      if persistent then Analysis.Persistent
                      else Analysis.Not_classified
              in
              classify_one
          in
          infos :=
            {
              instr = a.instr;
              kind = a.kind;
              target = a.target;
              cac;
              l2_class;
              must_ages = ages_of config must a.target;
              pers_ages = ages_of config pers a.target;
            }
            :: !infos;
          let may = apply_l2 bypass may (a, cac) in
          let must, pers = apply_l2_pers bypass (must, pers) (a, cac) in
          replay must may pers rest
    in
    replay must_ins.(id) may_ins.(id) pers_ins.(id) tagged.(id)
  done;
  let infos =
    List.sort (fun a b -> compare (a.instr, a.kind) (b.instr, b.kind)) !infos
  in
  let by_instr = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace by_instr (i.instr, i.kind) i) infos;
  let unknown_target =
    List.exists
      (fun i -> i.cac <> Never && i.target = Analysis.Unknown)
      infos
  in
  { config; infos; by_instr; unknown_target; bypass }

let config t = t.config

let find t kind instr =
  match Hashtbl.find_opt t.by_instr (instr, kind) with
  | Some i -> i
  | None -> raise Not_found

let classification t ?(kind = Analysis.Fetch) instr =
  (find t kind instr).l2_class

let cac t ?(kind = Analysis.Fetch) instr = (find t kind instr).cac

let cac_of_l1_analysis l1 = cac_of_l1 l1
let access_infos t = t.infos

let persistent_miss_count t =
  List.length
    (List.filter (fun i -> i.l2_class = Analysis.Persistent) t.infos)

let footprint t =
  let counts = Array.make t.config.Config.sets 0 in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun i ->
      if i.cac <> Never then
        match i.target with
        | Analysis.Lines ls ->
            List.iter
              (fun l ->
                if (not (t.bypass l)) && not (Hashtbl.mem seen l) then begin
                  Hashtbl.add seen l ();
                  let s = Config.set_of_line t.config l in
                  counts.(s) <- counts.(s) + 1
                end)
              ls
        | Analysis.Unknown -> ())
    t.infos;
  counts

let uses_unknown_target t = t.unknown_target

let single_usage_lines g loops ~l2_accesses =
  let counts = Hashtbl.create 64 in
  let n = Cfg.Graph.num_blocks g in
  for id = 0 to n - 1 do
    let in_loop = Cfg.Loops.loop_depth loops id > 0 in
    (* A run of consecutive accesses to the same line within a block is
       one use: only its first access can reach L2, the rest hit L1 by
       spatial locality. *)
    let last = ref (-1) in
    List.iter
      (fun (a : Analysis.access) ->
        match a.target with
        | Analysis.Lines [ l ] when l = !last && not in_loop -> ()
        | Analysis.Lines ls ->
            last := (match ls with [ l ] -> l | _ -> -1);
            List.iter
              (fun l ->
                let prev =
                  match Hashtbl.find_opt counts l with
                  | Some c -> c
                  | None -> 0
                in
                (* An access inside a loop counts as many. *)
                Hashtbl.replace counts l (prev + if in_loop then 2 else 1))
              ls
        | Analysis.Unknown -> last := -1)
      (l2_accesses id)
  done;
  Hashtbl.fold (fun l c acc -> if c = 1 then l :: acc else acc) counts []
  |> List.sort compare
