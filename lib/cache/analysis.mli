(** Per-procedure cache analysis: must/may/persistence fixpoints over the
    CFG plus per-access classification (Section 2.1 of the paper: accesses
    get a category ALWAYS_HIT / ALWAYS_MISS / PERSISTENT / NOT_CLASSIFIED).

    The same engine serves the instruction cache (every instruction fetch
    is an access at a statically known address) and the data cache
    (load/store addresses come from the interval value analysis; imprecise
    addresses degrade to small line sets or to [Unknown]). *)

type target =
  | Lines of int list  (** the access touches exactly one of these lines *)
  | Unknown

type kind = Fetch | Data
(** One instruction performs at most one access of each kind; [(instr,
    kind)] identifies an access point uniquely, which matters when the
    instruction and data paths share a cache level. *)

type access = { instr : int; kind : kind; target : target }

type classification = Always_hit | Always_miss | Persistent | Not_classified

val classification_to_string : classification -> string

(** Entry assumption: [Cold] for the task root (platform invalidates caches
    at task start), [Unknown] for callees, whose entry cache content
    depends on the caller. *)
type entry_state = Cold | Unknown_entry

type t

val instruction_accesses :
  Config.t -> Cfg.Graph.t -> Cfg.Block.id -> access list
(** One access per instruction of the block, at its code address. *)

val data_accesses :
  Config.t ->
  Cfg.Graph.t ->
  Dataflow.Value_analysis.result ->
  ?max_lines:int ->
  Cfg.Block.id ->
  access list
(** Accesses for loads/stores to cacheable spaces.  Address intervals
    spanning more than [max_lines] lines (default 16) become [Unknown].
    [Io]-space accesses are omitted (uncached). *)

val analyze :
  Config.t ->
  Cfg.Graph.t ->
  entry:entry_state ->
  accesses:(Cfg.Block.id -> access list) ->
  t

val classification : t -> ?kind:kind -> int -> classification
(** Classification of the access at the given instruction index (default
    kind [Fetch]).
    @raise Not_found if that instruction has no such access. *)

val accesses : t -> (access * classification) list
(** All accesses, by instruction order. *)

val persistent_miss_count : t -> int
(** Number of accesses classified [Persistent]; each contributes at most
    one miss per procedure execution (charged by the WCET composition). *)

val must_in : t -> Cfg.Block.id -> Acs.t
val may_in : t -> Cfg.Block.id -> Acs.t
val pers_in : t -> Cfg.Block.id -> Acs.t
val must_out : t -> Cfg.Block.id -> Acs.t
val may_out : t -> Cfg.Block.id -> Acs.t

val reachable_lines : t -> int list
(** All lines any access of the procedure may touch (sorted): the
    procedure's cache footprint, used by shared-cache conflict analysis. *)

val transfer : Acs.t -> access list -> had_call:bool -> Acs.t
(** Exposed for the multilevel/shared analyses and tests. *)

val fixpoint_iterations : unit -> int
(** Monotone count of abstract-interpretation sweeps (one per pass over
    the CFG of any must/may/persistence/L2 fixpoint) performed *by the
    calling domain*.  Read before and after an analysis and subtract for
    telemetry; per-domain storage keeps parallel analyses race-free. *)

val count_fixpoint_iteration : unit -> unit
(** Exposed for {!Multilevel}'s L2 fixpoints; not for external use. *)

val fixpoint_name : string -> Acs.kind -> string
(** ["cache.<level>.<must|may|pers>"] — the {!Dataflow.Worklist} span
    name for a cache fixpoint; exposed for {!Multilevel}. *)
