(* Each set holds its resident tags MRU-first in a fixed [assoc]-sized
   array ([n] of which are valid), plus a list of locked tags kept
   outside the recency order.  The array representation makes hits,
   reorders and fills in-place and allocation-free — this is the
   simulator's hottest data structure. *)
type set_state = {
  ways : int array;  (* MRU-first resident tags; indices >= n are stale *)
  mutable n : int;
  mutable locked : int list;
}

type t = {
  config : Config.t;
  sets : set_state array;
  mutable hits : int;
  mutable misses : int;
}

let create config =
  {
    config;
    sets =
      Array.init config.Config.sets (fun _ ->
          { ways = Array.make config.Config.assoc (-1); n = 0; locked = [] });
    hits = 0;
    misses = 0;
  }

let config t = t.config

(* Move ways.(i) to the front, sliding 0..i-1 down one. *)
let to_front s i =
  let tag = s.ways.(i) in
  for j = i downto 1 do
    s.ways.(j) <- s.ways.(j - 1)
  done;
  s.ways.(0) <- tag

let access_slow t s tag =
  if List.mem tag s.locked then begin
    t.hits <- t.hits + 1;
    `Hit
  end
  else begin
    let rec find i = if i >= s.n then -1 else if s.ways.(i) = tag then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then begin
      t.hits <- t.hits + 1;
      to_front s i;
      `Hit
    end
    else begin
      t.misses <- t.misses + 1;
      let capacity = t.config.Config.assoc - List.length s.locked in
      if capacity > 0 then begin
        (* insert as MRU, evicting the LRU entry if full *)
        let n' = if s.n + 1 < capacity then s.n + 1 else capacity in
        for j = n' - 1 downto 1 do
          s.ways.(j) <- s.ways.(j - 1)
        done;
        s.ways.(0) <- tag;
        s.n <- n'
      end;
      `Miss
    end
  end

let access t addr =
  (* [Config.set_of_addr]/[tag_of_addr] inlined to share one division. *)
  let cfg = t.config in
  let line = addr / cfg.Config.line_size in
  let nsets = cfg.Config.sets in
  let s = t.sets.(line mod nsets) in
  let tag = line / nsets in
  if s.n > 0 && s.ways.(0) = tag then begin
    (* Already most-recently-used: a hit that moves nothing.  (Locked
       tags are never in the ways array, so no lock check is needed.) *)
    t.hits <- t.hits + 1;
    `Hit
  end
  else access_slow t s tag

let note_hit t = t.hits <- t.hits + 1

let probe t addr =
  let cfg = t.config in
  let line = addr / cfg.Config.line_size in
  let s = t.sets.(line mod cfg.Config.sets) in
  let tag = line / cfg.Config.sets in
  List.mem tag s.locked
  ||
  let rec find i = i < s.n && (s.ways.(i) = tag || find (i + 1)) in
  find 0

let lock_line t addr =
  let s = t.sets.(Config.set_of_addr t.config addr) in
  let tag = Config.tag_of_addr t.config addr in
  if List.mem tag s.locked then ()
  else if List.length s.locked >= t.config.Config.assoc then
    failwith "Concrete.lock_line: set fully locked"
  else begin
    s.locked <- tag :: s.locked;
    (* drop the tag from the recency order if resident *)
    let rec find i = if i >= s.n then -1 else if s.ways.(i) = tag then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then begin
      for j = i to s.n - 2 do
        s.ways.(j) <- s.ways.(j + 1)
      done;
      s.n <- s.n - 1
    end;
    (* Locking may shrink the unlocked capacity below current residency. *)
    let capacity = t.config.Config.assoc - List.length s.locked in
    if s.n > capacity then s.n <- capacity
  end

let unlock_all t = Array.iter (fun s -> s.locked <- []) t.sets

let invalidate t = Array.iter (fun s -> s.n <- 0) t.sets

let resident_lines t =
  let lines = ref [] in
  Array.iteri
    (fun set s ->
      let tags = s.locked @ Array.to_list (Array.sub s.ways 0 s.n) in
      List.iter
        (fun tag -> lines := ((tag * t.config.Config.sets) + set) :: !lines)
        tags)
    t.sets;
  List.sort compare !lines

let stats t = (t.hits, t.misses)
