(** Concrete LRU cache, used by the cycle-level simulator.

    Caches start cold (invalidated), matching the platform contract the
    static analyses assume (time-predictable platforms invalidate caches at
    task start).  Supports locked lines: a locked line is always resident
    and reduces the effective associativity of its set. *)

type t

val create : Config.t -> t
val config : t -> Config.t

val access : t -> int -> [ `Hit | `Miss ]
(** Look up the byte address; on miss the line is filled, evicting the LRU
    unlocked line of the set if full.  Locked lines always hit. *)

val note_hit : t -> unit
(** Count a hit the caller has proved state-neutral: the line accessed is
    the one the cache touched last (hence most-recently-used in its set),
    so [access] would return [`Hit] and move nothing.  Lets hot loops
    skip the lookup entirely. *)

val probe : t -> int -> bool
(** Is the address's line resident?  Does not update LRU state. *)

val lock_line : t -> int -> unit
(** Lock the line containing the byte address (fills it if absent).
    @raise Failure if all ways of its set are already locked. *)

val unlock_all : t -> unit
val invalidate : t -> unit
(** Unlocked lines are dropped; locked lines stay. *)

val resident_lines : t -> int list
(** Sorted line numbers currently resident (locked and unlocked). *)

val stats : t -> int * int
(** (hits, misses) since creation. *)
