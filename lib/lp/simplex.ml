type outcome =
  | Optimal of Q.t * Q.t array
  | Unbounded
  | Infeasible

(* Sparse-row tableau.

   Each constraint row is a sparse map column -> nonzero coefficient with
   the right-hand side held separately; the reduced-cost row [z] stays
   dense because pricing scans every column anyway.  [basis.(i)] is the
   column basic in row [i]; canonical form is maintained by [pivot], so a
   basic column has a unit entry in its own row and appears in no other.
   IPET tableaus are network-flow-like — a few nonzeros per row out of
   hundreds of columns — so row operations touch only the handful of
   entries that exist instead of the whole width. *)

module Svec = struct
  type t = (int, Q.t) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let copy : t -> t = Hashtbl.copy
  let get (t : t) j = match Hashtbl.find_opt t j with Some q -> q | None -> Q.zero
  let set (t : t) j q =
    if Q.is_zero q then Hashtbl.remove t j else Hashtbl.replace t j q

  let iter f (t : t) = Hashtbl.iter f t

  let scale (t : t) k =
    Hashtbl.filter_map_inplace (fun _ v -> Some (Q.mul v k)) t

  (* target <- target + factor * src.  Exact arithmetic makes the entry
     order irrelevant. *)
  let axpy (target : t) factor (src : t) =
    iter (fun j v -> set target j (Q.add (get target j) (Q.mul factor v))) src
end

type tableau = {
  mutable rows : Svec.t array;
  mutable rhs : Q.t array;
  mutable basis : int array;
  mutable z : Q.t array; (* dense reduced costs, length ncols *)
  mutable zval : Q.t; (* objective value of the current basis *)
  mutable ncols : int;
  mutable blocked : bool array; (* columns that may never enter (artificials) *)
}

(* Per-domain monotone pivot counter: telemetry reads it before and after
   a solve and charges the difference, without cross-domain races. *)
let pivots_key = Domain.DLS.new_key (fun () -> ref 0)
let pivots () = !(Domain.DLS.get pivots_key)

let pivot t ~row ~col =
  incr (Domain.DLS.get pivots_key);
  let r = t.rows.(row) in
  let piv = Svec.get r col in
  if not (Q.equal piv Q.one) then begin
    let inv = Q.inv piv in
    Svec.scale r inv;
    t.rhs.(row) <- Q.mul t.rhs.(row) inv
  end;
  let m = Array.length t.rows in
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = Svec.get t.rows.(i) col in
      if not (Q.is_zero f) then begin
        Svec.axpy t.rows.(i) (Q.neg f) r;
        t.rhs.(i) <- Q.sub t.rhs.(i) (Q.mul f t.rhs.(row))
      end
    end
  done;
  let f = t.z.(col) in
  if not (Q.is_zero f) then begin
    Svec.iter (fun j v -> t.z.(j) <- Q.sub t.z.(j) (Q.mul f v)) r;
    t.zval <- Q.sub t.zval (Q.mul f t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Pricing.  Dantzig (most negative reduced cost, smallest index on ties)
   takes far fewer iterations than Bland on IPET tableaus but can cycle on
   degenerate vertices; after [degeneracy_threshold] consecutive
   zero-progress pivots we fall back to Bland's rule, which cannot cycle
   from any basis, and return to Dantzig on the next strict improvement. *)
let degeneracy_threshold = 32

let entering_dantzig t =
  let best = ref None in
  for j = 0 to t.ncols - 1 do
    if (not t.blocked.(j)) && Q.sign t.z.(j) < 0 then
      match !best with
      | Some (v, _) when Q.compare t.z.(j) v >= 0 -> ()
      | _ -> best := Some (t.z.(j), j)
  done;
  Option.map snd !best

let entering_bland t =
  let rec find j =
    if j >= t.ncols then None
    else if (not t.blocked.(j)) && Q.sign t.z.(j) < 0 then Some j
    else find (j + 1)
  in
  find 0

(* Ratio test: min rhs_i / a_i over a_i > 0, smallest basis index on
   ties (identical to the dense solver's rule). *)
let leaving t col =
  let m = Array.length t.rows in
  let best = ref None in
  for i = 0 to m - 1 do
    let a = Svec.get t.rows.(i) col in
    if Q.sign a > 0 then begin
      let ratio = Q.div t.rhs.(i) a in
      match !best with
      | None -> best := Some (ratio, i)
      | Some (r, i') ->
          let c = Q.compare ratio r in
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(i')) then
            best := Some (ratio, i)
    end
  done;
  !best

(* Pinned-artificial guard.  Zero-valued artificials are left basic after
   phase 1 (driving each one out would cost exactly the pivot we are
   trying to save), but they must stay at zero — a basic artificial going
   positive silently relaxes its equality row.  A strictly positive step
   through a row whose basic artificial has a negative coefficient in the
   entering column would do just that, so such a row preempts the ratio
   test: pivoting there is degenerate (rhs is zero — no variable moves,
   no objective change) and retires the artificial for good, since
   blocked columns never re-enter.  Each firing permanently shrinks the
   set of basic artificials, so these forced pivots cannot cycle. *)
let pinned_leaving t col =
  let m = Array.length t.rows in
  let best = ref None in
  for i = 0 to m - 1 do
    if
      t.blocked.(t.basis.(i))
      && Q.is_zero t.rhs.(i)
      && Q.sign (Svec.get t.rows.(i) col) < 0
    then
      match !best with
      | Some i' when t.basis.(i') <= t.basis.(i) -> ()
      | _ -> best := Some i
  done;
  !best

let iterate t =
  let degen = ref 0 in
  let rec go () =
    let entering =
      if !degen >= degeneracy_threshold then entering_bland t
      else entering_dantzig t
    in
    match entering with
    | None -> `Optimal
    | Some col -> (
        match leaving t col with
        | Some (ratio, row) when Q.is_zero ratio ->
            (* Zero step: pinned artificials cannot move either. *)
            pivot t ~row ~col;
            incr degen;
            go ()
        | blocking -> (
            match pinned_leaving t col with
            | Some row ->
                pivot t ~row ~col;
                incr degen;
                go ()
            | None -> (
                match blocking with
                | None ->
                    (* No pinned row intersects the ray either, so the
                       artificials stay at zero along it: genuinely
                       unbounded in the original problem. *)
                    `Unbounded
                | Some (ratio, row) ->
                    pivot t ~row ~col;
                    if Q.is_zero ratio then incr degen else degen := 0;
                    go ())))
  in
  go ()

type norm_constraint = { coefs : (Q.t * int) list; rel : Model.relation; rhs : Q.t }

(* Normalize to rhs >= 0, combining repeated variables. *)
let normalize_constraints model extra =
  let norm (e, rel, b) =
    let tbl = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (c, v) ->
        let v = (v : Model.var :> int) in
        match Hashtbl.find_opt tbl v with
        | Some c0 -> Hashtbl.replace tbl v (Q.add c0 c)
        | None ->
            Hashtbl.add tbl v c;
            order := v :: !order)
      (e : Model.linexpr);
    let coefs =
      List.rev_map (fun v -> (Hashtbl.find tbl v, v)) !order
      |> List.filter (fun (c, _) -> not (Q.is_zero c))
    in
    if Q.sign b < 0 then
      let coefs = List.map (fun (c, v) -> (Q.neg c, v)) coefs in
      let rel = match rel with Model.Le -> Model.Ge | Ge -> Le | Eq -> Eq in
      { coefs; rel; rhs = Q.neg b }
    else { coefs; rel; rhs = b }
  in
  List.map norm (Model.constraints model @ extra)

(* Triangular crash basis.

   An IPET model is a unit flow problem: one equality per block (rhs 0
   except the unit source row) over +-1 edge coefficients.  Such a system
   is almost permuted-triangular: starting from the virtual exit edge
   (which appears in a single row) the rows peel off one by one, each
   yielding a column that appears in exactly one not-yet-assigned row.
   Crashing along that order — assigning each peeled row its singleton
   +-1 column as basic and eliminating the column from every other row —
   produces a canonical basis whose basic solution already routes the
   unit flow, so phase 1 has nothing left to do and phase 2 starts from
   a genuine flow instead of an all-artificial vertex.

   The eliminations are crash/presolve row operations, not simplex
   iterations: there is no pricing and no ratio test, each touches only
   the sparse support of the peeled row, and none is counted by
   [pivots].  Rows the triangularization cannot reach (cyclic remainder)
   and rows whose basic value ends up negative fall back to an
   artificial; those with positive rhs are what phase 1 then minimizes. *)

let build_tableau model extra =
  let n = Model.num_vars model in
  let cons = normalize_constraints model extra in
  let m = List.length cons in
  let n_slack =
    List.length
      (List.filter (fun c -> c.rel = Model.Le || c.rel = Model.Ge) cons)
  in
  (* Every row may in the worst case fall back to an artificial (even a
     Le row, if crash eliminations drive its rhs negative); unused column
     indices are harmless because every structure below is keyed by
     explicit indices. *)
  let ncols = n + n_slack + m in
  let rows = Array.init m (fun _ -> Svec.create ()) in
  let rhs = Array.make m Q.zero in
  let basis = Array.make m (-1) in
  let is_art = Array.make ncols false in
  let next_slack = ref n in
  (* Raw rows with slack/surplus columns; a Le row crashes on its slack,
     a zero-rhs Ge row on its negated surplus.  Eq rows and positive-rhs
     Ge rows stay unassigned for the triangularization. *)
  List.iteri
    (fun i c ->
      List.iter (fun (coef, v) -> Svec.set rows.(i) v coef) c.coefs;
      rhs.(i) <- c.rhs;
      match c.rel with
      | Model.Le ->
          let s = !next_slack in
          incr next_slack;
          Svec.set rows.(i) s Q.one;
          basis.(i) <- s
      | Model.Ge ->
          let s = !next_slack in
          incr next_slack;
          Svec.set rows.(i) s Q.minus_one;
          if Q.is_zero c.rhs then begin
            Svec.scale rows.(i) Q.minus_one;
            basis.(i) <- s
          end
      | Model.Eq -> ())
    cons;
  (* Uncounted crash elimination: make row [i]'s basic column canonical
     (unit in its own row, absent elsewhere). *)
  let eliminate i =
    let r = rows.(i) in
    let v = basis.(i) in
    for k = 0 to m - 1 do
      if k <> i then begin
        let f = Svec.get rows.(k) v in
        if not (Q.is_zero f) then begin
          Svec.axpy rows.(k) (Q.neg f) r;
          rhs.(k) <- Q.sub rhs.(k) (Q.mul f rhs.(i))
        end
      end
    done
  in
  let sorted_entries r =
    let es = ref [] in
    Svec.iter (fun j q -> es := (j, q) :: !es) r;
    List.sort (fun (a, _) (b, _) -> compare a b) !es
  in
  (* Peel: repeatedly find an unassigned feasible row holding a unit
     column that no other unassigned row mentions (a -1 coefficient
     serves too when the rhs is zero, after negating the row).  Smallest
     row then smallest column keeps the construction deterministic. *)
  let occ = Array.make ncols 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.fill occ 0 ncols 0;
    for i = 0 to m - 1 do
      if basis.(i) < 0 then Svec.iter (fun j _ -> occ.(j) <- occ.(j) + 1) rows.(i)
    done;
    let found = ref None in
    (try
       for i = 0 to m - 1 do
         if basis.(i) < 0 && Q.sign rhs.(i) >= 0 then
           let cand =
             List.find_opt
               (fun (j, q) ->
                 occ.(j) = 1
                 && (Q.equal q Q.one
                    || (Q.equal q Q.minus_one && Q.is_zero rhs.(i))))
               (sorted_entries rows.(i))
           in
           match cand with
           | Some (j, q) ->
               found := Some (i, j, q);
               raise Exit
           | None -> ()
       done
     with Exit -> ());
    match !found with
    | None -> ()
    | Some (i, j, q) ->
        if Q.equal q Q.minus_one then Svec.scale rows.(i) Q.minus_one;
        basis.(i) <- j;
        eliminate i;
        progress := true
  done;
  (* Fixup: a crashed row whose basic value went negative reverts to an
     artificial (its old basic column was eliminated everywhere else, so
     dropping it keeps the rest canonical); every still-unassigned row
     gets one too, rhs normalized to >= 0 first. *)
  let art_rows = ref [] in
  let next_art = ref (n + n_slack) in
  for i = 0 to m - 1 do
    if basis.(i) >= 0 && Q.sign rhs.(i) < 0 then begin
      Svec.scale rows.(i) Q.minus_one;
      rhs.(i) <- Q.neg rhs.(i);
      basis.(i) <- -1
    end;
    if basis.(i) < 0 then begin
      if Q.sign rhs.(i) < 0 then begin
        Svec.scale rows.(i) Q.minus_one;
        rhs.(i) <- Q.neg rhs.(i)
      end;
      Svec.set rows.(i) !next_art Q.one;
      basis.(i) <- !next_art;
      is_art.(!next_art) <- true;
      art_rows := i :: !art_rows;
      incr next_art
    end
  done;
  (rows, rhs, basis, ncols, is_art, List.rev !art_rows)

(* Phase-1 objective: maximize -(sum of artificials over [active] rows
   only).  An artificial on a zero-rhs row starts basic at value zero —
   the crash basis already satisfies that row — so including it in the
   objective would only buy a chain of degenerate pivots kicking
   zero-valued artificials out one by one.  Instead those stay basic,
   pinned by the guard in [iterate], and phase 1 spends pivots purely on
   routing the genuinely infeasible rows' values to zero.  Canonical
   reduced costs: c_B is -1 exactly on active rows, so z_j = -(sum over
   active rows of a_ij), plus 1 for each active row's own artificial;
   other basic columns appear in no active row and get z_j = 0. *)
let phase1_z rows rhs basis ncols active =
  let z = Array.make ncols Q.zero in
  let zval = ref Q.zero in
  List.iter
    (fun i ->
      Svec.iter (fun j v -> z.(j) <- Q.sub z.(j) v) rows.(i);
      zval := Q.sub !zval rhs.(i))
    active;
  List.iter (fun i -> z.(basis.(i)) <- Q.add z.(basis.(i)) Q.one) active;
  (z, !zval)

(* Phase-2 objective row from scratch: z_j = sum_i c_basis(i) * a_ij - c_j
   with the objective value sum_i c_basis(i) * rhs_i. *)
let phase2_z cost rows rhs basis ncols =
  let c = Array.make ncols Q.zero in
  Array.iteri (fun v coef -> c.(v) <- coef) cost;
  let z = Array.make ncols Q.zero in
  for j = 0 to ncols - 1 do
    z.(j) <- Q.neg c.(j)
  done;
  let zval = ref Q.zero in
  Array.iteri
    (fun i b ->
      let cb = c.(b) in
      if not (Q.is_zero cb) then begin
        Svec.iter (fun j v -> z.(j) <- Q.add z.(j) (Q.mul cb v)) rows.(i);
        zval := Q.add !zval (Q.mul cb rhs.(i))
      end)
    basis;
  (z, !zval)

type state = {
  nvars : int;
  cost : Q.t array; (* dense objective over model variables *)
  tab : tableau;
}

let solution_of (tab : tableau) nvars =
  let solution = Array.make nvars Q.zero in
  Array.iteri
    (fun i b -> if b < nvars then solution.(b) <- tab.rhs.(i))
    tab.basis;
  solution

let cost_of_model model =
  let n = Model.num_vars model in
  let cost = Array.make n Q.zero in
  List.iter
    (fun (coef, v) ->
      let v = (v : Model.var :> int) in
      cost.(v) <- Q.add cost.(v) coef)
    (Model.objective model);
  cost

let solve_state_uninstrumented model ~extra =
  let rows, rhs, basis, ncols, is_art, art_rows = build_tableau model extra in
  let n = Model.num_vars model in
  let cost = cost_of_model model in
  let finish tab =
    match iterate tab with
    | `Unbounded -> (Unbounded, None)
    | `Optimal ->
        ( Optimal (tab.zval, solution_of tab n),
          Some { nvars = n; cost; tab } )
  in
  (* Only rows whose artificial starts at a nonzero value make the crash
     basis infeasible; in an IPET model that is just the unit source row
     — every flow-conservation row has rhs 0.  Phase 1 therefore
     minimizes only those, and when there are none (all artificials
     basic at zero) it is skipped outright. *)
  let active = List.filter (fun i -> Q.sign rhs.(i) > 0) art_rows in
  if active = [] then begin
    let z, zval = phase2_z cost rows rhs basis ncols in
    finish { rows; rhs; basis; z; zval; ncols; blocked = is_art }
  end
  else begin
    let z1, zval1 = phase1_z rows rhs basis ncols active in
    let t1 = { rows; rhs; basis; z = z1; zval = zval1; ncols; blocked = is_art } in
    match iterate t1 with
    | `Unbounded ->
        (* Phase 1 is bounded above by 0 by construction. *)
        assert false
    | `Optimal ->
        if Q.sign t1.zval < 0 then (Infeasible, None)
        else begin
          (* Remaining basic artificials all sit at zero and stay pinned
             there through phase 2; they are only driven out if a warm
             start later needs the basis (see [unpin_artificials]). *)
          let z2, zval2 = phase2_z cost t1.rows t1.rhs t1.basis ncols in
          t1.z <- z2;
          t1.zval <- zval2;
          finish t1
        end
  end

(* Observability wrapper: a span per root solve plus the per-solve pivot
   histogram.  With no sink installed this is one atomic load on top of
   the solve. *)
let solve_state model ~extra =
  if not (Obs.enabled ()) then solve_state_uninstrumented model ~extra
  else begin
    let p0 = pivots () in
    let r =
      Obs.span ~cat:"lp"
        ~args:[ ("vars", Obs.Event.Int (Model.num_vars model)) ]
        "lp.simplex.solve"
        (fun () -> solve_state_uninstrumented model ~extra)
    in
    let dp = pivots () - p0 in
    Obs.add "lp.simplex.pivots" dp;
    Obs.observe "lp.simplex.pivots_per_solve" dp;
    r
  end

let solve_with model ~extra = fst (solve_state model ~extra)
let solve model = solve_with model ~extra:[]

(* ------------------------------------------------------------------ *)
(* Prepared solves: share the objective-independent prefix              *)
(* ------------------------------------------------------------------ *)

(* Everything [solve_state] does before the phase-2 objective row is
   installed — normalization, the sparse tableau, the triangular crash
   basis, and the phase-1 cleanup of infeasible artificial rows — depends
   only on the constraint set.  [prepare] runs that prefix once and
   snapshots the resulting tableau; [solve_prepared] replays from the
   snapshot with a fresh objective, reproducing the cold solve's pivot
   trajectory bit-exactly (same starting basis, same deterministic
   pricing), so re-solves under new objective coefficients cost only the
   phase-2 pivots. *)

type prepared =
  | Prepared of {
      p_nvars : int;
      p_rows : Svec.t array;
      p_rhs : Q.t array;
      p_basis : int array;
      p_ncols : int;
      p_blocked : bool array;
    }
  | Prepared_infeasible

let prepare_uninstrumented model ~extra =
  let rows, rhs, basis, ncols, is_art, art_rows = build_tableau model extra in
  let n = Model.num_vars model in
  let snapshot () =
    Prepared
      {
        p_nvars = n;
        p_rows = rows;
        p_rhs = rhs;
        p_basis = basis;
        p_ncols = ncols;
        p_blocked = is_art;
      }
  in
  let active = List.filter (fun i -> Q.sign rhs.(i) > 0) art_rows in
  if active = [] then snapshot ()
  else begin
    let z1, zval1 = phase1_z rows rhs basis ncols active in
    let t1 =
      { rows; rhs; basis; z = z1; zval = zval1; ncols; blocked = is_art }
    in
    match iterate t1 with
    | `Unbounded -> assert false (* phase 1 is bounded above by 0 *)
    | `Optimal -> if Q.sign t1.zval < 0 then Prepared_infeasible else snapshot ()
  end

let prepare model ~extra =
  if not (Obs.enabled ()) then prepare_uninstrumented model ~extra
  else
    Obs.span ~cat:"lp"
      ~args:[ ("vars", Obs.Event.Int (Model.num_vars model)) ]
      "lp.simplex.prepare"
      (fun () -> prepare_uninstrumented model ~extra)

let solve_prepared_uninstrumented prepared model =
  match prepared with
  | Prepared_infeasible -> (Infeasible, None)
  | Prepared p ->
      let cost = cost_of_model model in
      let rows = Array.map Svec.copy p.p_rows in
      let rhs = Array.copy p.p_rhs in
      let basis = Array.copy p.p_basis in
      let z, zval = phase2_z cost rows rhs basis p.p_ncols in
      let tab =
        {
          rows;
          rhs;
          basis;
          z;
          zval;
          ncols = p.p_ncols;
          blocked = Array.copy p.p_blocked;
        }
      in
      (match iterate tab with
      | `Unbounded -> (Unbounded, None)
      | `Optimal ->
          ( Optimal (tab.zval, solution_of tab p.p_nvars),
            Some { nvars = p.p_nvars; cost; tab } ))

let solve_prepared prepared model =
  if not (Obs.enabled ()) then solve_prepared_uninstrumented prepared model
  else begin
    let p0 = pivots () in
    let r =
      Obs.span ~cat:"lp"
        ~args:[ ("vars", Obs.Event.Int (Model.num_vars model)) ]
        "lp.simplex.warm_solve"
        (fun () -> solve_prepared_uninstrumented prepared model)
    in
    let dp = pivots () - p0 in
    Obs.add "lp.simplex.pivots" dp;
    Obs.observe "lp.simplex.pivots_per_solve" dp;
    r
  end

(* ------------------------------------------------------------------ *)
(* Warm starts: dual simplex from a parent optimum                     *)
(* ------------------------------------------------------------------ *)

let copy_state (s : state) =
  {
    s with
    tab =
      {
        rows = Array.map Svec.copy s.tab.rows;
        rhs = Array.copy s.tab.rhs;
        basis = Array.copy s.tab.basis;
        z = Array.copy s.tab.z;
        zval = s.tab.zval;
        ncols = s.tab.ncols;
        blocked = Array.copy s.tab.blocked;
      };
  }

(* Dual simplex: the basis stays dual-feasible (z_j >= 0), primal
   infeasibilities (negative rhs) are pivoted away.  Leaving row = most
   negative rhs (smallest basis index on ties); entering column = dual
   ratio test min z_j / -a_rj over a_rj < 0, smallest index on ties.
   After [degeneracy_threshold] zero-progress steps the leaving choice
   falls back to the smallest basis index (dual Bland), which terminates
   from any basis.  No entering candidate means the row proves primal
   infeasibility. *)
let dual_iterate (t : tableau) =
  let m () = Array.length t.rows in
  let degen = ref 0 in
  let rec go () =
    let leaving =
      if !degen >= degeneracy_threshold then begin
        let best = ref None in
        for i = 0 to m () - 1 do
          if Q.sign t.rhs.(i) < 0 then
            match !best with
            | Some i' when t.basis.(i') <= t.basis.(i) -> ()
            | _ -> best := Some i
        done;
        !best
      end
      else begin
        let best = ref None in
        for i = 0 to m () - 1 do
          if Q.sign t.rhs.(i) < 0 then
            match !best with
            | None -> best := Some i
            | Some i' ->
                let c = Q.compare t.rhs.(i) t.rhs.(i') in
                if c < 0 || (c = 0 && t.basis.(i) < t.basis.(i')) then
                  best := Some i
        done;
        !best
      end
    in
    match leaving with
    | None -> `Optimal
    | Some row -> (
        let best = ref None in
        Svec.iter
          (fun j a ->
            if (not t.blocked.(j)) && Q.sign a < 0 then begin
              let ratio = Q.div t.z.(j) (Q.neg a) in
              match !best with
              | None -> best := Some (ratio, j)
              | Some (r, j') ->
                  let c = Q.compare ratio r in
                  if c < 0 || (c = 0 && j < j') then best := Some (ratio, j)
            end)
          t.rows.(row);
        match !best with
        | None -> `Infeasible
        | Some (ratio, col) ->
            pivot t ~row ~col;
            if Q.is_zero ratio then incr degen else degen := 0;
            go ())
  in
  go ()

(* The primal phases leave zero-valued artificials basic, pinned by the
   ratio-test guard.  The dual simplex has no such guard — a dual pivot
   could move a pinned artificial off zero and silently relax its
   equality — so before warm-starting from a state we drive its basic
   artificials out onto structural columns.  Every such pivot is
   degenerate (the row's rhs is zero): the solution point is untouched,
   only its basis representation changes, so re-deriving the reduced
   costs and re-running the primal iteration restores a dual-feasible
   optimum at the same objective.  A row with no structural column left
   is genuinely redundant and stays inert: no entering column ever
   intersects it.  Mutating the parent is safe (same solution, same
   objective) and means repeated branches from one node pay at most
   once. *)
let unpin_artificials (s : state) =
  let t = s.tab in
  let drove = ref false in
  Array.iteri
    (fun i b ->
      if t.blocked.(b) then begin
        let best = ref None in
        Svec.iter
          (fun j _ ->
            if not t.blocked.(j) then
              match !best with
              | Some j' when j' <= j -> ()
              | _ -> best := Some j)
          t.rows.(i);
        match !best with
        | Some col ->
            pivot t ~row:i ~col;
            drove := true
        | None -> ()
      end)
    t.basis;
  if !drove then begin
    let z, zval = phase2_z s.cost t.rows t.rhs t.basis t.ncols in
    t.z <- z;
    t.zval <- zval;
    match iterate t with
    | `Optimal -> ()
    | `Unbounded ->
        (* The objective is bounded by the known optimum at this vertex. *)
        assert false
  end

(* Append [terms <= bound] to a solved state and restore optimality with
   dual simplex.  The new row is expressed over the current basis by
   eliminating every basic variable it mentions; its fresh slack column
   becomes basic, so reduced costs are untouched and the parent's pivots
   are all reused. *)
let add_le_row parent terms bound =
  unpin_artificials parent;
  let s = copy_state parent in
  let t = s.tab in
  let slack = t.ncols in
  t.ncols <- t.ncols + 1;
  let z' = Array.make t.ncols Q.zero in
  Array.blit t.z 0 z' 0 (t.ncols - 1);
  t.z <- z';
  let blocked' = Array.make t.ncols false in
  Array.blit t.blocked 0 blocked' 0 (t.ncols - 1);
  t.blocked <- blocked';
  let row = Svec.create () in
  List.iter (fun (c, v) -> Svec.set row v (Q.add (Svec.get row v) c)) terms;
  let rhs = ref bound in
  (* Canonicalize against the current basis. *)
  Array.iteri
    (fun i b ->
      let f = Svec.get row b in
      if not (Q.is_zero f) then begin
        Svec.axpy row (Q.neg f) t.rows.(i);
        rhs := Q.sub !rhs (Q.mul f t.rhs.(i))
      end)
    t.basis;
  Svec.set row slack Q.one;
  let m = Array.length t.rows in
  let rows' = Array.make (m + 1) row in
  Array.blit t.rows 0 rows' 0 m;
  t.rows <- rows';
  let rhs' = Array.make (m + 1) !rhs in
  Array.blit t.rhs 0 rhs' 0 m;
  t.rhs <- rhs';
  let basis' = Array.make (m + 1) slack in
  Array.blit t.basis 0 basis' 0 m;
  t.basis <- basis';
  match dual_iterate t with
  | `Infeasible -> (Infeasible, None)
  | `Optimal -> (Optimal (t.zval, solution_of t s.nvars), Some s)

let branch parent ~var ~bound =
  let p0 = if Obs.enabled () then pivots () else 0 in
  let r =
    let v = (var : Model.var :> int) in
    match bound with
    | `Le k -> add_le_row parent [ (Q.one, v) ] (Q.of_int k)
    | `Ge k -> add_le_row parent [ (Q.minus_one, v) ] (Q.of_int (-k))
  in
  if Obs.enabled () then Obs.add "lp.simplex.pivots" (pivots () - p0);
  r

(* General cut rows over model variables: the row-level primitive behind
   [branch], exposed for infeasible-path conflict cuts (sum of edge flows
   <= k).  Same warm-start contract: the parent's basis is reused, one
   dual-simplex run restores optimality. *)
let add_le parent ~terms ~bound =
  let p0 = if Obs.enabled () then pivots () else 0 in
  let r =
    add_le_row parent
      (List.map (fun (c, v) -> (c, (v : Model.var :> int))) terms)
      bound
  in
  if Obs.enabled () then Obs.add "lp.simplex.pivots" (pivots () - p0);
  r

(* Incumbent cutoff: objective >= lower, i.e. -objective <= -lower. *)
let add_cutoff parent ~lower =
  let terms = ref [] in
  Array.iteri
    (fun v c -> if not (Q.is_zero c) then terms := (Q.neg c, v) :: !terms)
    parent.cost;
  add_le_row parent (List.rev !terms) (Q.neg lower)
