(** Exact rational arithmetic over native integers.

    Values are kept in normal form: the denominator is positive and the
    numerator and denominator are coprime.  Native [int] arithmetic (63-bit)
    is sufficient for the LP/ILP instances produced by IPET path analysis,
    which are small network-flow-like problems with modest coefficients. *)

type t = private { num : int; den : int }

exception Overflow
(** Raised by any arithmetic whose exact result does not fit native
    [int]s.  Silent wrap-around would corrupt a WCET bound, so every
    operation ([add], [sub], [mul], [div], [neg], [compare], ...) checks.
    Integer-by-integer operations (both denominators 1, the common case
    in IPET tableaus) take a fast path that skips gcd normalization. *)

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_zero : t -> bool
val is_integer : t -> bool

val floor : t -> int
(** Greatest integer [<= t]. *)

val ceil : t -> int
(** Least integer [>= t]. *)

val to_float : t -> float
val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( = ) : t -> t -> bool
