(** The pre-sparse solver stack, kept as a differential oracle.

    Dense tableau, pure Bland pricing, cold-start branch and bound — the
    exact algorithms {!Simplex} and {!Ilp} replaced.  The QCheck
    differential suite asserts outcome equality against this module on
    random models, and [bench/perf.ml] measures its pivot counts as the
    baseline the sparse/warm-started stack must beat.  No analysis path
    uses it. *)

type outcome =
  | Optimal of Q.t * Q.t array
  | Unbounded
  | Infeasible

val solve_lp : Model.t -> outcome

val solve_lp_with :
  Model.t -> extra:(Model.linexpr * Model.relation * Q.t) list -> outcome

type ilp_outcome =
  | Ilp_optimal of Q.t * int array
  | Ilp_unbounded
  | Ilp_infeasible

val solve_ilp : ?max_nodes:int -> Model.t -> ilp_outcome
(** @raise Failure when the node budget is exhausted. *)

val pivots : unit -> int
(** Monotone per-domain pivot count, same contract as {!Simplex.pivots}
    but charged only by this module. *)

val ilp_nodes : unit -> int
(** Monotone per-domain branch-and-bound node count, same contract as
    {!Ilp.nodes_explored} but charged only by {!solve_ilp}. *)
