(** Integer linear programming by branch and bound on the exact simplex.

    All model variables are required to take integer values.  IPET
    relaxations are usually integral already (flow-conservation
    constraints form a network-like matrix), so branching is rare; it
    exists to stay correct for the few models where capacity constraints
    break integrality.

    Each branch-and-bound child warm-starts from its parent's solved
    basis ({!Simplex.branch}) rather than re-solving from scratch, and
    once an incumbent exists an objective cutoff row lets the dual
    simplex prune non-improving subtrees outright (sound because the
    objective of any integral solution to an integral-coefficient
    objective is an integer). *)

type outcome =
  | Optimal of Q.t * int array
      (** Objective value (always an integer for integral models, kept as
          {!Q.t} for uniformity) and an optimal integer assignment.  The
          objective value is the unique ILP optimum; when several integer
          assignments attain it, which one is reported depends on the
          search order. *)
  | Unbounded
      (** The root relaxation is unbounded.  Unboundedness can only occur
          at the root: every child's feasible region is contained in its
          parent's, so an optimal parent never has an unbounded child —
          no branch is explored after an unbounded outcome. *)
  | Infeasible

type result = { outcome : outcome; nodes : int  (** search-tree nodes explored *) }

val solve_result : ?max_nodes:int -> Model.t -> result
(** [max_nodes] bounds the branch-and-bound tree size (default [100_000]).
    @raise Failure if the node budget is exhausted, since a truncated search
    could silently under-approximate a WCET bound. *)

val solve : ?max_nodes:int -> Model.t -> outcome
(** [solve m] is [(solve_result m).outcome]. *)

val solve_result_prepared :
  ?max_nodes:int -> Simplex.prepared -> Model.t -> result
(** Like {!solve_result}, but the root relaxation replays from a
    {!Simplex.prepared} constraint snapshot instead of cold-starting —
    the branch-and-bound tree, optimum, and node count are bit-identical
    to {!solve_result} on the same model (same root basis, same
    deterministic pricing), only the objective-independent tableau work
    is skipped.  [model] must be the model the snapshot was prepared
    from, with its objective re-set per solve. *)

val solve_result_state :
  ?max_nodes:int ->
  Model.t ->
  Simplex.outcome * Simplex.state option ->
  result
(** Branch and bound from an explicitly solved root relaxation — e.g. a
    {!Simplex.solve_prepared} replay extended with {!Simplex.add_le}
    conflict cuts.  The root must be optimal for [model]'s current
    objective over [model]'s constraints plus whatever rows were added to
    the state; the search then only ever appends further rows, so the cut
    rows constrain every node exactly as if they were model
    constraints. *)

val nodes_explored : unit -> int
(** Monotone count of branch-and-bound nodes explored by the calling
    domain, same telemetry contract as {!Simplex.pivots}. *)
