(** Two-phase primal simplex over exact rationals, sparse rows.

    Solves [maximize c.x  s.t.  A.x rel b,  x >= 0] built with {!Model}.
    Rows are stored sparsely (IPET tableaus have a handful of nonzeros per
    row), pricing is Dantzig's largest-coefficient rule with a fallback to
    Bland's anti-cycling rule after a run of degenerate pivots, and a
    crash basis seeds equality rows with their singleton unit columns so
    phase 1 has little left to do.  Exact {!Q} arithmetic makes the result
    free of floating-point artifacts, which matters because IPET WCET
    bounds must be safe, not approximately safe. *)

type outcome =
  | Optimal of Q.t * Q.t array
      (** Objective value and one optimal assignment, indexed by the
          variable's creation order in the model.  The objective value is
          the unique LP optimum; the vertex reached may differ from other
          pivot rules' when optima are not unique. *)
  | Unbounded
  | Infeasible

val solve : Model.t -> outcome

val solve_with :
  Model.t -> extra:(Model.linexpr * Model.relation * Q.t) list -> outcome
(** Solve the model with additional constraints appended (used by callers
    that do not need warm starts). *)

val pivots : unit -> int
(** Monotone count of simplex pivots performed *by the calling domain*
    since it started (primal and dual pivots alike).  Read before and
    after a solve and subtract to charge the difference to a telemetry
    counter; per-domain storage keeps parallel analyses from racing. *)

(** {1 Warm starts}

    Branch-and-bound re-solves near-identical LPs: each child differs from
    its parent by one variable bound.  Instead of rebuilding and re-solving
    from scratch, a solved {!state} can be extended with one row and
    re-optimized by dual simplex, reusing every pivot the parent paid
    for. *)

type state
(** A solved tableau at a primal/dual-optimal basis, plus the objective.
    Immutable from the caller's perspective: {!branch} and {!add_cutoff}
    copy before mutating. *)

val solve_state :
  Model.t ->
  extra:(Model.linexpr * Model.relation * Q.t) list ->
  outcome * state option
(** Like {!solve_with}, additionally returning the solved state when the
    outcome is [Optimal] (and [None] otherwise). *)

(** {1 Prepared solves}

    Multi-mode analyses re-solve the {e same} constraint system under
    different objective coefficients (the flow structure of an IPET model
    is mode-invariant; only block costs change).  Everything up to the
    phase-2 objective row — normalization, the sparse tableau, the
    triangular crash basis, phase-1 cleanup — depends only on the
    constraints, so it can be paid once and replayed per objective. *)

type prepared
(** A snapshot of the tableau after the objective-independent prefix of
    {!solve_state} (post crash basis and phase 1), reusable across any
    number of objectives over the same constraints. *)

val prepare :
  Model.t -> extra:(Model.linexpr * Model.relation * Q.t) list -> prepared
(** Build the snapshot from the model's constraints; the model's current
    objective is ignored.  If phase 1 already proves the constraints
    infeasible, the snapshot remembers that and every
    {!solve_prepared} returns [Infeasible] without further work. *)

val solve_prepared : prepared -> Model.t -> outcome * state option
(** [solve_prepared p model] solves [model]'s {e current} objective over
    the snapshot's constraints ([model] must be the one [prepare] was
    given, possibly after {!Model.set_objective}).  The pivot trajectory
    — and therefore the optimal vertex, objective, and returned state —
    is bit-identical to a cold {!solve_state} on the same model: the
    replay starts from the same basis and prices with the same
    deterministic rules. *)

val branch :
  state -> var:Model.var -> bound:[ `Le of int | `Ge of int ] -> outcome * state option
(** [branch s ~var ~bound] appends the bound to a copy of [s] and
    restores optimality with dual simplex.  Starting from a dual-feasible
    basis the result is never [Unbounded]: it is [Optimal] (with the new
    state) or [Infeasible] (child pruned). *)

val add_le :
  state -> terms:(Q.t * Model.var) list -> bound:Q.t -> outcome * state option
(** [add_le s ~terms ~bound] appends the cut [terms <= bound] to a copy of
    [s] and restores optimality with dual simplex — the general-row
    primitive behind {!branch}, exposed so infeasible-path refinement can
    inject conflict cuts (sums of edge-flow variables) without a cold
    re-solve.  From a dual-feasible basis the result is [Optimal] (with
    the extended state, reusable for further cuts) or [Infeasible] (the
    cut empties the region); never [Unbounded]. *)

val add_cutoff : state -> lower:Q.t -> outcome * state option
(** [add_cutoff s ~lower] constrains the objective to [>= lower] (sound
    for branch-and-bound pruning only when the true optimum reaching the
    caller's incumbent test is integral, so [lower = incumbent + 1]
    excludes no improving solution).  [Infeasible] means no point of the
    subproblem can beat the incumbent. *)
