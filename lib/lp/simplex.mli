(** Two-phase primal simplex over exact rationals.

    Solves [maximize c.x  s.t.  A.x rel b,  x >= 0] built with {!Model}.
    Bland's anti-cycling rule guarantees termination; exact {!Q} arithmetic
    makes the result free of floating-point artifacts, which matters because
    IPET WCET bounds must be safe, not approximately safe. *)

type outcome =
  | Optimal of Q.t * Q.t array
      (** Objective value and one optimal assignment, indexed by the
          variable's creation order in the model. *)
  | Unbounded
  | Infeasible

val solve : Model.t -> outcome

val solve_with :
  Model.t -> extra:(Model.linexpr * Model.relation * Q.t) list -> outcome
(** Solve the model with additional constraints appended (used by
    branch-and-bound without mutating the shared model). *)

val pivots : unit -> int
(** Monotone count of simplex pivots performed *by the calling domain*
    since it started.  Read before and after a solve and subtract to
    charge the difference to a telemetry counter; per-domain storage keeps
    parallel analyses from racing. *)
