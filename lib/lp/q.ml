type t = { num : int; den : int }

exception Overflow

(* Checked native-int primitives.  The solver keeps coefficients small
   (the sparse path never forms dense products of unrelated rows), so the
   checks almost never fire — but when they would, wrapping silently used
   to corrupt a WCET bound.  Raising is the only safe answer. *)

let add_int a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow;
  s

let neg_int a = if a = min_int then raise Overflow else -a

let mul_int a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = -1 then neg_int b
  else if b = -1 then neg_int a
  else
    let p = a * b in
    if p / b <> a then raise Overflow;
    p

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let num, den = if den < 0 then (neg_int num, neg_int den) else (num, den) in
    if num = 0 then { num = 0; den = 1 }
    else
      let g = gcd (Stdlib.abs num) den in
      { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den

(* Fast paths: integer-by-integer arithmetic (the common case in IPET
   tableaus, where almost every coefficient is 0 or +-1) skips the gcd
   normalization entirely; results of int ops are already normal. *)

let add a b =
  if a.den = 1 && b.den = 1 then { num = add_int a.num b.num; den = 1 }
  else if a.num = 0 then b
  else if b.num = 0 then a
  else
    make
      (add_int (mul_int a.num b.den) (mul_int b.num a.den))
      (mul_int a.den b.den)

let sub a b =
  if a.den = 1 && b.den = 1 then { num = add_int a.num (neg_int b.num); den = 1 }
  else if b.num = 0 then a
  else
    make
      (add_int (mul_int a.num b.den) (neg_int (mul_int b.num a.den)))
      (mul_int a.den b.den)

let mul a b =
  if a.den = 1 && b.den = 1 then { num = mul_int a.num b.num; den = 1 }
  else if a.num = 0 || b.num = 0 then zero
  else make (mul_int a.num b.num) (mul_int a.den b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero
  else make (mul_int a.num b.den) (mul_int a.den b.num)

let neg a = { a with num = neg_int a.num }
let abs a = { a with num = Stdlib.abs a.num }

let inv a =
  if a.num = 0 then raise Division_by_zero else make a.den a.num

let compare a b =
  if a.den = b.den then Stdlib.compare a.num b.num
  else Stdlib.compare (mul_int a.num b.den) (mul_int b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_zero a = a.num = 0
let is_integer a = a.den = 1

let floor a =
  if a.num >= 0 then a.num / a.den
  else if a.num mod a.den = 0 then a.num / a.den
  else (a.num / a.den) - 1

let ceil a = -floor (neg a)

let to_float a = float_of_int a.num /. float_of_int a.den

let to_int_exn a =
  if a.den = 1 then a.num
  else invalid_arg (Printf.sprintf "Q.to_int_exn: %d/%d" a.num a.den)

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) = equal
