(* The pre-sparse solver stack, kept verbatim as a differential oracle:
   dense tableau, pure Bland pricing, and a branch-and-bound that
   cold-starts the simplex at every node.  [bench/perf.ml] measures its
   pivot counts as the baseline the sparse/warm-started stack must beat,
   and the QCheck differential suite asserts outcome equality against it
   on random models.  Not used by any analysis path. *)

type outcome =
  | Optimal of Q.t * Q.t array
  | Unbounded
  | Infeasible

type tableau = {
  rows : Q.t array array;
  basis : int array;
  z : Q.t array;
  ncols : int;
  blocked : bool array;
}

let pivots_key = Domain.DLS.new_key (fun () -> ref 0)
let pivots () = !(Domain.DLS.get pivots_key)

let pivot t ~row ~col =
  incr (Domain.DLS.get pivots_key);
  let m = Array.length t.rows and w = t.ncols + 1 in
  let piv = t.rows.(row).(col) in
  let inv = Q.inv piv in
  for j = 0 to w - 1 do
    t.rows.(row).(j) <- Q.mul t.rows.(row).(j) inv
  done;
  let eliminate target =
    let factor = target.(col) in
    if not (Q.is_zero factor) then
      for j = 0 to w - 1 do
        target.(j) <- Q.sub target.(j) (Q.mul factor t.rows.(row).(j))
      done
  in
  for i = 0 to m - 1 do
    if i <> row then eliminate t.rows.(i)
  done;
  eliminate t.z;
  t.basis.(row) <- col

(* Bland's rule: entering = smallest-index column with negative reduced
   cost; leaving = ratio test with smallest basis index tie-break. *)
let rec iterate t =
  let entering =
    let rec find j =
      if j >= t.ncols then None
      else if (not t.blocked.(j)) && Q.sign t.z.(j) < 0 then Some j
      else find (j + 1)
    in
    find 0
  in
  match entering with
  | None -> `Optimal
  | Some col -> (
      let m = Array.length t.rows in
      let best = ref None in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if Q.sign a > 0 then begin
          let ratio = Q.div t.rows.(i).(t.ncols) a in
          match !best with
          | None -> best := Some (ratio, i)
          | Some (r, i') ->
              let c = Q.compare ratio r in
              if c < 0 || (c = 0 && t.basis.(i) < t.basis.(i')) then
                best := Some (ratio, i)
        end
      done;
      match !best with
      | None -> `Unbounded
      | Some (_, row) ->
          pivot t ~row ~col;
          iterate t)

type norm_constraint = { coefs : Q.t array; rel : Model.relation; rhs : Q.t }

let normalize_constraints model extra =
  let n = Model.num_vars model in
  let norm (e, rel, b) =
    let coefs = Array.make n Q.zero in
    List.iter
      (fun (c, v) ->
        let v = (v : Model.var :> int) in
        coefs.(v) <- Q.add coefs.(v) c)
      (e : Model.linexpr);
    if Q.sign b < 0 then begin
      let coefs = Array.map Q.neg coefs in
      let rel =
        match rel with Model.Le -> Model.Ge | Ge -> Le | Eq -> Eq
      in
      { coefs; rel; rhs = Q.neg b }
    end
    else { coefs; rel; rhs = b }
  in
  List.map norm (Model.constraints model @ extra)

let build_tableau model extra =
  let n = Model.num_vars model in
  let cons = normalize_constraints model extra in
  let m = List.length cons in
  let n_slack =
    List.length
      (List.filter (fun c -> c.rel = Model.Le || c.rel = Model.Ge) cons)
  in
  let n_art =
    List.length
      (List.filter (fun c -> c.rel = Model.Ge || c.rel = Model.Eq) cons)
  in
  let ncols = n + n_slack + n_art in
  let rows = Array.init m (fun _ -> Array.make (ncols + 1) Q.zero) in
  let basis = Array.make m (-1) in
  let art_cols = ref [] in
  let art_rows = ref [] in
  let next_slack = ref n in
  let next_art = ref (n + n_slack) in
  List.iteri
    (fun i c ->
      Array.blit c.coefs 0 rows.(i) 0 n;
      rows.(i).(ncols) <- c.rhs;
      (match c.rel with
      | Model.Le ->
          rows.(i).(!next_slack) <- Q.one;
          basis.(i) <- !next_slack;
          incr next_slack
      | Model.Ge ->
          rows.(i).(!next_slack) <- Q.minus_one;
          incr next_slack;
          rows.(i).(!next_art) <- Q.one;
          basis.(i) <- !next_art;
          art_cols := !next_art :: !art_cols;
          art_rows := i :: !art_rows;
          incr next_art
      | Model.Eq ->
          rows.(i).(!next_art) <- Q.one;
          basis.(i) <- !next_art;
          art_cols := !next_art :: !art_cols;
          art_rows := i :: !art_rows;
          incr next_art))
    cons;
  let blocked = Array.make ncols false in
  (rows, basis, ncols, blocked, !art_cols, !art_rows)

let phase1_z rows ncols art_rows art_cols =
  let z = Array.make (ncols + 1) Q.zero in
  List.iter
    (fun i ->
      for j = 0 to ncols do
        z.(j) <- Q.sub z.(j) rows.(i).(j)
      done)
    art_rows;
  List.iter (fun j -> z.(j) <- Q.add z.(j) Q.one) art_cols;
  z

let phase2_z model rows basis ncols =
  let c = Array.make ncols Q.zero in
  List.iter
    (fun (coef, v) ->
      let v = (v : Model.var :> int) in
      c.(v) <- Q.add c.(v) coef)
    (Model.objective model);
  let z = Array.make (ncols + 1) Q.zero in
  for j = 0 to ncols - 1 do
    z.(j) <- Q.neg c.(j)
  done;
  Array.iteri
    (fun i b ->
      let cb = c.(b) in
      if not (Q.is_zero cb) then
        for j = 0 to ncols do
          z.(j) <- Q.add z.(j) (Q.mul cb rows.(i).(j))
        done)
    basis;
  z

let solve_lp_with model ~extra =
  let rows, basis, ncols, blocked, art_cols, art_rows =
    build_tableau model extra
  in
  let n = Model.num_vars model in
  let has_artificials = art_cols <> [] in
  let finish t =
    match iterate t with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n Q.zero in
        Array.iteri
          (fun i b -> if b < n then solution.(b) <- t.rows.(i).(ncols))
          t.basis;
        Optimal (t.z.(ncols), solution)
  in
  if not has_artificials then
    let z = phase2_z model rows basis ncols in
    finish { rows; basis; z; ncols; blocked }
  else begin
    let z1 = phase1_z rows ncols art_rows art_cols in
    let t1 = { rows; basis; z = z1; ncols; blocked } in
    match iterate t1 with
    | `Unbounded ->
        (* Phase 1 is bounded above by 0 by construction. *)
        assert false
    | `Optimal ->
        if Q.sign t1.z.(ncols) < 0 then Infeasible
        else begin
          (* Drive remaining basic artificials out where possible (the
             original quadratic List.mem scan, kept as-is). *)
          Array.iteri
            (fun i b ->
              if List.mem b art_cols then begin
                let rec find j =
                  if j >= ncols then None
                  else if
                    (not (List.mem j art_cols))
                    && not (Q.is_zero rows.(i).(j))
                  then Some j
                  else find (j + 1)
                in
                match find 0 with
                | Some col -> pivot t1 ~row:i ~col
                | None -> () (* redundant row; artificial stays at zero *)
              end)
            t1.basis;
          List.iter (fun j -> blocked.(j) <- true) art_cols;
          let z2 = phase2_z model t1.rows t1.basis ncols in
          finish { t1 with z = z2 }
        end
  end

let solve_lp model = solve_lp_with model ~extra:[]

(* ------------------------------------------------------------------ *)
(* Cold-start branch and bound (the original Ilp.solve, bugs and all   *)
(* except the Unbounded early exit, which is harmless to keep here).   *)
(* ------------------------------------------------------------------ *)

type ilp_outcome =
  | Ilp_optimal of Q.t * int array
  | Ilp_unbounded
  | Ilp_infeasible

let find_fractional solution =
  let n = Array.length solution in
  let rec go i =
    if i >= n then None
    else if Q.is_integer solution.(i) then go (i + 1)
    else Some i
  in
  go 0

(* Per-domain monotone node counter, mirroring [Ilp.nodes_explored] so
   the bench harness can report both stacks' tree sizes. *)
let nodes_key = Domain.DLS.new_key (fun () -> ref 0)
let ilp_nodes () = !(Domain.DLS.get nodes_key)

let solve_ilp ?(max_nodes = 100_000) model =
  let n = Model.num_vars model in
  let incumbent = ref None in
  let nodes = Domain.DLS.get nodes_key in
  let nodes0 = !nodes in
  let better obj =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Q.compare obj best > 0
  in
  let rec explore extra =
    incr nodes;
    if !nodes - nodes0 > max_nodes then
      failwith "Reference.solve_ilp: branch-and-bound node budget exhausted";
    match solve_lp_with model ~extra with
    | Infeasible -> `Done
    | Unbounded -> `Unbounded
    | Optimal (obj, solution) ->
        if not (better obj) then `Done
        else begin
          match find_fractional solution with
          | None ->
              if better obj then
                incumbent := Some (obj, Array.map Q.to_int_exn solution);
              `Done
          | Some i ->
              let v = Model.var_of_index model i in
              let x = solution.(i) in
              let le = ([ (Q.one, v) ], Model.Le, Q.of_int (Q.floor x)) in
              let ge = ([ (Q.one, v) ], Model.Ge, Q.of_int (Q.ceil x)) in
              let r1 = explore (le :: extra) in
              let r2 = explore (ge :: extra) in
              if r1 = `Unbounded || r2 = `Unbounded then `Unbounded
              else `Done
        end
  in
  match explore [] with
  | `Unbounded -> Ilp_unbounded
  | `Done -> (
      match !incumbent with
      | Some (obj, sol) ->
          assert (Array.length sol = n);
          Ilp_optimal (obj, sol)
      | None -> Ilp_infeasible)
