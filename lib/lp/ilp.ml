type outcome =
  | Optimal of Q.t * int array
  | Unbounded
  | Infeasible

type result = { outcome : outcome; nodes : int }

(* Monotone per-domain node counter, same telemetry contract as
   [Simplex.pivots]. *)
let nodes_key = Domain.DLS.new_key (fun () -> ref 0)
let nodes_explored () = !(Domain.DLS.get nodes_key)

let find_fractional solution =
  let n = Array.length solution in
  let rec go i =
    if i >= n then None
    else if Q.is_integer solution.(i) then go (i + 1)
    else Some i
  in
  go 0

(* Core branch-and-bound, parameterized over how the root relaxation is
   solved: cold ([Simplex.solve_state]) or replayed from a prepared
   constraint snapshot ([Simplex.solve_prepared]).  Identical pricing
   from an identical root basis makes the two trees — and hence the
   optimum and every node count — bit-identical. *)
let solve_result_from ?(max_nodes = 100_000) model root =
  let n = Model.num_vars model in
  let incumbent = ref None in
  let nodes = ref 0 in
  let count_node () =
    incr nodes;
    incr (Domain.DLS.get nodes_key);
    if !nodes > max_nodes then
      failwith "Ilp.solve: branch-and-bound node budget exhausted"
  in
  let better obj =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Q.compare obj best > 0
  in
  (* Cutoff rows [objective >= incumbent + 1] are only sound when every
     improving solution has an integral objective, i.e. when all
     objective coefficients are integers (variables are integral). *)
  let integral_objective =
    List.for_all (fun (c, _) -> Q.is_integer c) (Model.objective model)
  in
  (* DFS over subproblems.  Each child re-optimizes its parent's solved
     basis through [Simplex.branch] (one dual-simplex run over one added
     row) instead of cold-starting a two-phase solve per node. *)
  let rec explore state obj solution =
    count_node ();
    if better obj then begin
      match find_fractional solution with
      | None -> incumbent := Some (obj, Array.map Q.to_int_exn solution)
      | Some i ->
          let v = Model.var_of_index model i in
          let x = solution.(i) in
          descend state ~var:v ~bound:(`Le (Q.floor x));
          (* The incumbent may have improved inside the first branch;
             tighten the basis with a cutoff row before the second so its
             dual simplex can prune non-improving regions directly. *)
          let state =
            if not integral_objective then Some state
            else
              match !incumbent with
              | None -> Some state
              | Some (best, _) -> (
                  match
                    Simplex.add_cutoff state ~lower:(Q.add best Q.one)
                  with
                  | _, Some s -> Some s
                  | Simplex.Infeasible, None -> None
                  | _, None -> Some state)
          in
          Option.iter
            (fun state -> descend state ~var:v ~bound:(`Ge (Q.ceil x)))
            state
    end
  and descend state ~var ~bound =
    match Simplex.branch state ~var ~bound with
    | Simplex.Optimal (obj, sol), Some child -> explore child obj sol
    | _, _ -> count_node () (* infeasible child: a node, but a leaf *)
  in
  match root with
  | Simplex.Unbounded, _ ->
      count_node ();
      { outcome = Unbounded; nodes = !nodes }
  | Simplex.Infeasible, _ ->
      count_node ();
      { outcome = Infeasible; nodes = !nodes }
  | Simplex.Optimal (obj, solution), Some state ->
      explore state obj solution;
      let outcome =
        match !incumbent with
        | Some (obj, sol) ->
            assert (Array.length sol = n);
            Optimal (obj, sol)
        | None -> Infeasible
      in
      { outcome; nodes = !nodes }
  | Simplex.Optimal _, None -> assert false

let solve_result_uninstrumented ?max_nodes model =
  solve_result_from ?max_nodes model (Simplex.solve_state model ~extra:[])

(* Observability wrapper: a span per branch-and-bound tree plus node
   counters and the per-solve node histogram. *)
let instrumented model f =
  if not (Obs.enabled ()) then f ()
  else begin
    let r =
      Obs.span ~cat:"lp"
        ~args:[ ("vars", Obs.Event.Int (Model.num_vars model)) ]
        "lp.ilp.solve" f
    in
    Obs.add "lp.ilp.nodes" r.nodes;
    Obs.observe "lp.ilp.nodes_per_solve" r.nodes;
    r
  end

let solve_result ?max_nodes model =
  instrumented model (fun () -> solve_result_uninstrumented ?max_nodes model)

let solve_result_prepared ?max_nodes prepared model =
  instrumented model (fun () ->
      solve_result_from ?max_nodes model (Simplex.solve_prepared prepared model))

let solve_result_state ?max_nodes model root =
  instrumented model (fun () -> solve_result_from ?max_nodes model root)

let solve ?max_nodes model = (solve_result ?max_nodes model).outcome
