(** Infeasible-path refinement: semantic conflict cuts over IPET flows.

    Structural IPET maximizes over every path the CFG admits, including
    paths no execution can take (Section 2.1's known pessimism; Béchennec
    & Cassez attack it with slicing-derived semantic constraints).  This
    module is the semantic side of the CEGAR loop in {!Core.Ipet}: it
    derives, from the interval value analysis, a deterministic list of
    {e candidate conflict cuts} — linear inequalities over edge-traversal
    counts that every real execution satisfies but the structural optimum
    may not — and checks a solver witness against them.  The loop itself
    (solve, extract witness, inject the first violated cut, warm
    re-solve) lives with the solver; this module owns the cut language
    and the soundness argument for each generator.

    Two generators, both justified purely by the value analysis:

    - {b Dead branch edge}: the branch condition refined along an edge
      leaves a tested register's interval empty — no concrete state can
      traverse the edge, so its flow is [<= 0].
    - {b Conflicting branch pair}: two branch edges in one procedure
      constrain the {e same} register — one never written in the
      procedure, so its value is fixed per invocation — to disjoint
      intervals.  Both edges cannot be traversed in one invocation;
      outside loops their flows sum to [<= 1], inside a common outermost
      loop to [<= iterations] (each iteration picks at most one side).

    Candidates are generated in a fixed deterministic order and the
    CEGAR loop always injects the {e first} violated one, so a fixed
    iteration budget yields the same refined bound at any worker
    count. *)

type config = {
  max_iterations : int;
      (** CEGAR iterations (witness checks) per procedure; each
          iteration injects at most one cut. *)
  max_cuts : int;  (** total cuts injected per procedure *)
}

val default : config
(** 8 iterations, 16 cuts — enough to drain the candidate list on every
    catalog program. *)

val make : ?max_iterations:int -> ?max_cuts:int -> unit -> config
(** @raise Invalid_argument when a budget is negative. *)

val salt : config -> string
(** Canonical descriptor of the closure semantics a refined result
    depends on, e.g. ["refine:i8c16"].  Appended to {!Core.Memo} salts
    and server store-key fingerprints so refined and unrefined results
    never share a cache entry. *)

type cut = {
  edges : Cfg.Graph.edge list;  (** flows summed, duplicates illegal *)
  bound : int;  (** [sum of edge flows <= bound] *)
  reason : string;  (** human-readable justification, for diagnostics *)
}

val candidates :
  graph:Cfg.Graph.t ->
  loops:Cfg.Loops.t ->
  loop_bounds:Dataflow.Loop_bounds.bound list ->
  va:Dataflow.Value_analysis.result ->
  call_clobbers:(string -> Isa.Instr.reg list) ->
  unit ->
  cut list
(** Every cut a real execution of the procedure provably satisfies,
    dead-edge cuts first, then conflicting pairs, each group in block-id
    order.  [va] must be the value analysis of [graph] and
    [call_clobbers] the clobber sets it was computed with (a wider
    clobber set than the analysis used would be unsound here: a register
    counts as conflict-eligible only if {e no} instruction, call
    included, may write it). *)

val violated : flow:(Cfg.Graph.edge -> int) -> cut -> bool
(** Whether a witness (per-edge traversal counts) breaks the cut. *)

val pp_cut : Format.formatter -> cut -> unit
