type config = { max_iterations : int; max_cuts : int }

let default = { max_iterations = 8; max_cuts = 16 }

let make ?(max_iterations = default.max_iterations)
    ?(max_cuts = default.max_cuts) () =
  if max_iterations < 0 || max_cuts < 0 then
    invalid_arg "Refine.make: budgets must be non-negative";
  { max_iterations; max_cuts }

let salt c = Printf.sprintf "refine:i%dc%d" c.max_iterations c.max_cuts

type cut = {
  edges : Cfg.Graph.edge list;
  bound : int;
  reason : string;
}

let violated ~flow cut =
  List.fold_left (fun acc e -> acc + flow e) 0 cut.edges > cut.bound

let pp_cut ppf cut =
  Format.fprintf ppf "@[<h>%a <= %d (%s)@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
       (fun ppf (e : Cfg.Graph.edge) ->
         Format.fprintf ppf "e%d->%d%s" e.Cfg.Graph.src e.Cfg.Graph.dst
           (match e.Cfg.Graph.kind with
           | Cfg.Graph.Taken -> "t"
           | Cfg.Graph.Fallthrough -> "f")))
    cut.edges cut.bound cut.reason

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

(* Registers any instruction of the procedure may write, calls included
   (via the same clobber sets the value analysis used).  A register
   outside this set holds one value for the whole invocation, which is
   what lets two disjoint constraints on it contradict each other. *)
let written_regs (g : Cfg.Graph.t) ~call_clobbers =
  let written = Array.make Isa.Instr.num_regs false in
  Array.iter
    (fun (b : Cfg.Block.t) ->
      for i = b.Cfg.Block.first to b.Cfg.Block.last do
        match g.Cfg.Graph.program.Isa.Program.code.(i) with
        | Isa.Instr.Alu (_, rd, _, _)
        | Isa.Instr.Alui (_, rd, _, _)
        | Isa.Instr.Load (_, rd, _, _) ->
            written.(rd) <- true
        | Isa.Instr.Call callee ->
            List.iter (fun r -> written.(r) <- true) (call_clobbers callee)
        | _ -> ()
      done)
    g.Cfg.Graph.blocks;
  written

let branch_of (g : Cfg.Graph.t) (b : Cfg.Block.t) =
  match Cfg.Block.terminator g.Cfg.Graph.program b with
  | Isa.Instr.Branch (_, ra, rb, _) -> Some (ra, rb)
  | _ -> None

let kind_key = function Cfg.Graph.Taken -> 0 | Cfg.Graph.Fallthrough -> 1

let edge_compare (a : Cfg.Graph.edge) (b : Cfg.Graph.edge) =
  compare
    (a.Cfg.Graph.src, a.Cfg.Graph.dst, kind_key a.Cfg.Graph.kind)
    (b.Cfg.Graph.src, b.Cfg.Graph.dst, kind_key b.Cfg.Graph.kind)

(* Dead branch edges: the condition refined along the edge empties a
   tested register's interval, so no concrete state traverses it. *)
let dead_edge_cuts g ~va =
  let cuts = ref [] in
  Array.iter
    (fun (b : Cfg.Block.t) ->
      match branch_of g b with
      | None -> ()
      | Some (ra, rb) ->
          List.iter
            (fun (e : Cfg.Graph.edge) ->
              let st = Dataflow.Value_analysis.edge_state va g e in
              let dead r =
                Dataflow.Interval.is_bottom
                  (Dataflow.Value_analysis.reg_interval st r)
              in
              if dead ra || dead rb then
                cuts :=
                  {
                    edges = [ e ];
                    bound = 0;
                    reason =
                      Printf.sprintf "dead branch edge B%d->B%d"
                        e.Cfg.Graph.src e.Cfg.Graph.dst;
                  }
                  :: !cuts)
            (Cfg.Graph.succs g b.Cfg.Block.id))
    g.Cfg.Graph.blocks;
  List.rev !cuts

(* One branch edge's constraint on an unwritten register: the interval
   the refined edge state leaves it, when the refinement actually bit
   (i.e. is strictly below top). *)
type edge_constraint = {
  c_edge : Cfg.Graph.edge;
  c_reg : Isa.Instr.reg;
  c_interval : Dataflow.Interval.t;
}

let edge_constraints g ~va ~written =
  let cs = ref [] in
  Array.iter
    (fun (b : Cfg.Block.t) ->
      match branch_of g b with
      | None -> ()
      | Some (ra, rb) ->
          List.iter
            (fun (e : Cfg.Graph.edge) ->
              let st = Dataflow.Value_analysis.edge_state va g e in
              List.iter
                (fun r ->
                  if r <> 0 && not written.(r) then
                    let i = Dataflow.Value_analysis.reg_interval st r in
                    if
                      (not (Dataflow.Interval.is_bottom i))
                      && not (Dataflow.Interval.equal i Dataflow.Interval.top)
                    then cs := { c_edge = e; c_reg = r; c_interval = i } :: !cs)
                (List.sort_uniq compare [ ra; rb ]))
            (Cfg.Graph.succs g b.Cfg.Block.id))
    g.Cfg.Graph.blocks;
  List.rev !cs

(* How often two conflicting edges could jointly fire if the conflict
   were ignored: once outside all loops, once per iteration when both
   sit in the same outermost loop (its entry edges fire at most once per
   invocation, so iterations <= max back edges + 1).  Anything else —
   different loops, nested loops — is skipped rather than guessed. *)
let joint_bound ~loops ~loop_bounds b1 b2 =
  match
    ( Cfg.Loops.innermost_containing loops b1,
      Cfg.Loops.innermost_containing loops b2 )
  with
  | None, None -> Some 1
  | Some l1, Some l2
    when l1.Cfg.Loops.header = l2.Cfg.Loops.header
         && l1.Cfg.Loops.parent = None ->
      Option.map
        (fun (bd : Dataflow.Loop_bounds.bound) ->
          bd.Dataflow.Loop_bounds.max_back_edges + 1)
        (List.find_opt
           (fun (bd : Dataflow.Loop_bounds.bound) ->
             bd.Dataflow.Loop_bounds.header = l1.Cfg.Loops.header)
           loop_bounds)
  | _ -> None

(* Conflicting branch pairs: two edges in different blocks constrain the
   same never-written register to disjoint intervals.  A single
   invocation holds one value for that register, so it cannot satisfy
   both constraints: the edges' joint traversal count is bounded by how
   often the program reaches their common scope. *)
let conflict_cuts g ~loops ~loop_bounds ~va ~written =
  let cs = edge_constraints g ~va ~written in
  let cuts = ref [] in
  List.iter
    (fun c1 ->
      List.iter
        (fun c2 ->
          if
            c1.c_reg = c2.c_reg
            && c1.c_edge.Cfg.Graph.src < c2.c_edge.Cfg.Graph.src
            && Dataflow.Interval.is_bottom
                 (Dataflow.Interval.meet c1.c_interval c2.c_interval)
          then
            match
              joint_bound ~loops ~loop_bounds c1.c_edge.Cfg.Graph.src
                c2.c_edge.Cfg.Graph.src
            with
            | None -> ()
            | Some bound ->
                cuts :=
                  {
                    edges = [ c1.c_edge; c2.c_edge ];
                    bound;
                    reason =
                      Printf.sprintf
                        "r%d in %s at B%d conflicts with r%d in %s at B%d"
                        c1.c_reg
                        (Dataflow.Interval.to_string c1.c_interval)
                        c1.c_edge.Cfg.Graph.src c2.c_reg
                        (Dataflow.Interval.to_string c2.c_interval)
                        c2.c_edge.Cfg.Graph.src;
                  }
                  :: !cuts)
        cs)
    cs;
  (* A pair of blocks can conflict through several registers or interval
     shapes; one cut per edge pair (the tightest bound) is enough. *)
  let by_edges = Hashtbl.create 16 in
  List.iter
    (fun cut ->
      let key =
        List.map
          (fun (e : Cfg.Graph.edge) ->
            (e.Cfg.Graph.src, e.Cfg.Graph.dst, kind_key e.Cfg.Graph.kind))
          cut.edges
      in
      match Hashtbl.find_opt by_edges key with
      | Some prev when prev.bound <= cut.bound -> ()
      | _ -> Hashtbl.replace by_edges key cut)
    !cuts;
  Hashtbl.fold (fun _ cut acc -> cut :: acc) by_edges []
  |> List.sort (fun a b ->
         compare
           (List.map (fun e -> (e.Cfg.Graph.src, e.Cfg.Graph.dst)) a.edges,
            a.bound)
           (List.map (fun e -> (e.Cfg.Graph.src, e.Cfg.Graph.dst)) b.edges,
            b.bound))

let candidates ~graph ~loops ~loop_bounds ~va ~call_clobbers () =
  let written = written_regs graph ~call_clobbers in
  let dead =
    List.sort (fun a b -> edge_compare (List.hd a.edges) (List.hd b.edges))
      (dead_edge_cuts graph ~va)
  in
  dead @ conflict_cuts graph ~loops ~loop_bounds ~va ~written
