(** Deterministic pseudo-random number generator (splitmix64).

    The fuzzer's contract is that a failing program is reproducible from
    [(seed, index)] alone, on any machine, OCaml version, and worker
    count.  The stdlib [Random] gives no cross-version stream stability,
    so the generator carries its own: splitmix64 (Steele et al., the
    stream-splitting generator of Java's [SplittableRandom]), 64-bit
    state, one multiply-xor-shift avalanche per draw. *)

type t

val create : seed:int -> t
(** Stream for [seed]; nearby seeds yield unrelated streams. *)

val of_pair : seed:int -> index:int -> t
(** Independent stream for program [index] of campaign [seed]: streams
    for different indices of one seed do not overlap prefixes (the pair
    is avalanched into the initial state, not used as an offset). *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability (approximately) [p]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)
