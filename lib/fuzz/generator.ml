type op =
  | Alu_burst of int
  | Load of Isa.Instr.space * int
  | Store of Isa.Instr.space * int
  | Load_indexed of Isa.Instr.space * int

type piece =
  | Straight of op list
  | Loop of { iters : int; body : piece list }
  | Diamond of { sel_off : int; heavy : op list; light : op list }
  | Call of int
  | Io_poll of { off : int; bound : int }

type params = {
  max_pieces : int;
  max_ops : int;
  max_iters : int;
  max_depth : int;
  locality : float;
  io_density : float;
  call_density : float;
}

let default_params =
  {
    max_pieces = 6;
    max_ops = 5;
    max_iters = 12;
    max_depth = 2;
    locality = 0.6;
    io_density = 0.15;
    call_density = 0.25;
  }

type t = {
  name : string;
  pieces : piece list;
  source : string;
  program : Isa.Program.t;
  annot : Dataflow.Annot.t;
  data_init : (int * int) list;
}

(* Register discipline (r0 is hardwired zero):
   - r1..r8    rotating scratch (ALU operands, load destinations)
   - r9        diamond selector
   - r10..r13  helper procedures only
   - r14       I/O poll counter
   - r20..r22  loop counters, one per nesting depth

   Addresses are formed from immediates and loop counters only, never
   from loaded values, so in-bounds accesses are guaranteed statically. *)

let clamp lo hi v = max lo (min hi v)

(* Largest absolute word offset per space (Exec's memory sizes), and the
   largest base offset an indexed access may use (counter adds <= 64). *)
let max_abs_off = function
  | Isa.Instr.Data -> 4095
  | Isa.Instr.Stack -> 1023
  | Isa.Instr.Io -> 63

let max_idx_off = function
  | Isa.Instr.Data -> 4000
  | Isa.Instr.Stack -> 900
  | Isa.Instr.Io -> 0 (* unused: indexed I/O is demoted to absolute *)

let space_suffix = function
  | Isa.Instr.Data -> "d"
  | Isa.Instr.Stack -> "s"
  | Isa.Instr.Io -> "io"

(* ---- random piece trees ---------------------------------------------- *)

let random_offset rng p space =
  if Rng.chance rng p.locality then Rng.int rng 16
  else
    match space with
    | Isa.Instr.Data -> Rng.int rng 512
    | Isa.Instr.Stack -> Rng.int rng 256
    | Isa.Instr.Io -> Rng.int rng 48

let random_space rng p =
  if Rng.chance rng p.io_density then Isa.Instr.Io
  else if Rng.bool rng then Isa.Instr.Data
  else Isa.Instr.Stack

let random_op rng p ~depth =
  match Rng.int rng 8 with
  | 0 | 1 -> Alu_burst (Rng.range rng 1 6)
  | 2 | 3 ->
      let s = random_space rng p in
      Load (s, random_offset rng p s)
  | 4 | 5 ->
      let s = random_space rng p in
      Store (s, random_offset rng p s)
  | _ ->
      let s = if Rng.bool rng then Isa.Instr.Data else Isa.Instr.Stack in
      if depth > 0 then Load_indexed (s, random_offset rng p s)
      else Load (s, random_offset rng p s)

let random_ops rng p ~depth n =
  List.init (Rng.range rng 1 (max 1 n)) (fun _ -> random_op rng p ~depth)

let rec random_piece rng p ~depth =
  let choice = Rng.int rng 10 in
  if choice < 3 then Straight (random_ops rng p ~depth p.max_ops)
  else if choice < 6 && depth < min p.max_depth 3 then
    let iters = Rng.range rng 2 (max 2 p.max_iters) in
    let body =
      List.init (Rng.range rng 1 2) (fun _ ->
          random_piece rng p ~depth:(depth + 1))
    in
    Loop { iters; body }
  else if choice < 8 then
    Diamond
      {
        sel_off = Rng.int rng 32;
        heavy = random_ops rng p ~depth p.max_ops;
        light = random_ops rng p ~depth 2;
      }
  else if Rng.chance rng p.call_density then Call (Rng.int rng 3)
  else if Rng.chance rng p.io_density then
    Io_poll { off = Rng.int rng 48; bound = Rng.int rng 16 }
  else Straight (random_ops rng p ~depth p.max_ops)

let random_pieces rng p =
  List.init (Rng.range rng 1 (max 1 p.max_pieces)) (fun _ ->
      random_piece rng p ~depth:0)

(* ---- assembly emission ----------------------------------------------- *)

type emit_state = {
  buf : Buffer.t;
  mutable labels : int;
  mutable scratch : int;
  mutable annots : (string * string * int) list;  (* proc, header, bound *)
  mutable data_init : (int * int) list;
}

let emitf st fmt = Printf.ksprintf (fun s -> Buffer.add_string st.buf (s ^ "\n")) fmt

let fresh_label st prefix =
  let l = Printf.sprintf "%s%d" prefix st.labels in
  st.labels <- st.labels + 1;
  l

let next_scratch st =
  let r = 1 + (st.scratch mod 8) in
  st.scratch <- st.scratch + 1;
  r

(* Counter register of the innermost active loop, r0 outside any loop. *)
let counter_reg ~depth = if depth <= 0 then 0 else 20 + (min depth 3 - 1)

let rec emit_op st ~depth op =
  match op with
  | Alu_burst k ->
      let k = clamp 1 12 k in
      for j = 0 to k - 1 do
        let rd = next_scratch st in
        let rs = 1 + ((rd + j) mod 8) in
        match j mod 5 with
        | 0 -> emitf st "  addi r%d, r%d, %d" rd rs (j + 1)
        | 1 -> emitf st "  mul r%d, r%d, r%d" rd rd rs
        | 2 -> emitf st "  xor r%d, r%d, r%d" rd rs rd
        | 3 -> emitf st "  slt r%d, r%d, r%d" rd rs rd
        | _ -> emitf st "  div r%d, r%d, r%d" rd rd rs
      done
  | Load (space, off) ->
      let off = clamp 0 (max_abs_off space) (abs off) in
      emitf st "  ld.%s r%d, %d(r0)" (space_suffix space) (next_scratch st) off
  | Store (space, off) ->
      let off = clamp 0 (max_abs_off space) (abs off) in
      emitf st "  st.%s r%d, %d(r0)" (space_suffix space) (next_scratch st) off
  | Load_indexed (space, off) -> (
      match space with
      | Isa.Instr.Io ->
          (* counter + offset could leave the 64-word I/O space *)
          emit_op st ~depth (Load (space, off))
      | _ ->
          let off = clamp 0 (max_idx_off space) (abs off) in
          emitf st "  ld.%s r%d, %d(r%d)" (space_suffix space)
            (next_scratch st) off (counter_reg ~depth))

let rec emit_piece st ~depth piece =
  match piece with
  | Straight ops -> List.iter (emit_op st ~depth) ops
  | Loop { iters; body } ->
      if depth >= 3 then
        (* no counter register left: run the body once, unlooped *)
        List.iter (emit_piece st ~depth) body
      else begin
        let iters = clamp 1 64 iters in
        let counter = 20 + depth in
        let header = fresh_label st "lp" in
        emitf st "  li r%d, %d" counter iters;
        emitf st "%s:" header;
        List.iter (emit_piece st ~depth:(depth + 1)) body;
        emitf st "  subi r%d, r%d, 1" counter counter;
        emitf st "  bne r%d, r0, %s" counter header;
        (* [iters] executions = [iters - 1] back-edge traversals *)
        st.annots <- ("main", header, iters - 1) :: st.annots
      end
  | Diamond { sel_off; heavy; light } ->
      let l_else = fresh_label st "el" in
      let l_join = fresh_label st "dj" in
      let sel_off = clamp 0 4095 (abs sel_off) in
      (* odd selector words are preloaded nonzero: the simulated path
         takes the heavy (fallthrough) arm, even ones the light arm *)
      if sel_off mod 2 = 1 && not (List.mem_assoc sel_off st.data_init) then
        st.data_init <- (sel_off, 1) :: st.data_init;
      emitf st "  ld.d r9, %d(r0)" sel_off;
      emitf st "  beq r9, r0, %s" l_else;
      List.iter (emit_op st ~depth) heavy;
      emitf st "  jmp %s" l_join;
      emitf st "%s:" l_else;
      List.iter (emit_op st ~depth) light;
      emitf st "%s:" l_join;
      emitf st "  nop"
  | Call k -> emitf st "  call h%d" (abs k mod 3)
  | Io_poll { off; bound } ->
      let off = clamp 0 63 (abs off) in
      let bound = clamp 0 64 (abs bound) in
      let header = fresh_label st "io" in
      let done_ = fresh_label st "iod" in
      emitf st "  ld.io r14, %d(r0)" off;
      emitf st "%s:" header;
      emitf st "  beq r14, r0, %s" done_;
      emitf st "  subi r14, r14, 1";
      emitf st "  jmp %s" header;
      emitf st "%s:" done_;
      emitf st "  nop";
      (* fresh I/O memory reads 0, so the simulator takes 0 back edges;
         the analysis charges the annotated bound *)
      st.annots <- ("main", header, bound) :: st.annots

(* Three fixed helper procedures.  They clobber only r10..r13, so loop
   counters, the diamond selector, and the poll counter survive calls.
   Uncalled helpers are dead code the callgraph never visits. *)
let helpers st =
  emitf st "";
  emitf st "h0:";
  emitf st "  addi r10, r10, 3";
  emitf st "  mul r10, r10, r10";
  emitf st "  ret";
  emitf st "";
  emitf st "h1:";
  emitf st "  li r11, 4";
  emitf st "h1l:";
  emitf st "  ld.d r12, 2(r11)";
  emitf st "  subi r11, r11, 1";
  emitf st "  bne r11, r0, h1l";
  emitf st "  ret";
  emitf st "";
  emitf st "h2:";
  emitf st "  st.d r10, 5(r0)";
  emitf st "  ld.s r13, 3(r0)";
  emitf st "  xor r13, r13, r10";
  emitf st "  ret";
  st.annots <- ("h1", "h1l", 3) :: st.annots

let assemble ?(name = "fuzz") pieces =
  let st =
    { buf = Buffer.create 512; labels = 0; scratch = 0; annots = [];
      data_init = [] }
  in
  emitf st "main:";
  List.iter (emit_piece st ~depth:0) pieces;
  emitf st "  halt";
  helpers st;
  let source = Buffer.contents st.buf in
  let program = Isa.Asm.parse ~name source in
  let annot =
    List.fold_left
      (fun a (proc, header_label, bound) ->
        Dataflow.Annot.with_loop_bound a ~proc ~header_label bound)
      Dataflow.Annot.empty st.annots
  in
  { name; pieces; source; program; annot; data_init = List.rev st.data_init }

let generate ?(params = default_params) ~seed ~index () =
  let rng = Rng.of_pair ~seed ~index in
  let pieces = random_pieces rng params in
  assemble ~name:(Printf.sprintf "fuzz-%d-%d" seed index) pieces
