(** Differential soundness oracle: static bounds vs. simulated cycles.

    For every generated program the oracle asserts the execution-time
    sandwich [BCET <= observed <= WCET] of the repo's platform contract:
    the observed side comes from {!Sim.Machine} (the concrete machine),
    the bound sides from {!Core.Wcet}/{!Core.Bcet}/{!Core.Multicore}
    (the analyses), configured to describe *the same* machine.

    Modes and what each validates:
    - [Solo]: five single-core platform shapes (no L2, private L2, tiny
      L1s, distributed DRAM refresh, method cache), full sandwich per
      shape.
    - [Oblivious]: the interference-oblivious baseline.  Its bound is
      only claimed for a task owning the machine, so it is validated
      against a *solo* run — under contention it can be exceeded (that
      is experiment T2's point, not a soundness bug).
    - [Joint]/[Bypass]: joint shared-L2 analysis (without/with
      single-usage bypass) vs. a contended run of the whole task group
      on the shared-L2 machine, co-runner interference included.
    - [Columnized]/[Bankized]: partitioned L2 slices vs. a contended run
      on the sliced machine.
    - [Locked]: statically locked shared L2; the simulator's L2 is
      preloaded with the same global selection the analysis chose.
    - [Dynamic]: dynamic locking is analysis-level only (the machine
      does not reprogram lock bits at run time), so its bound is checked
      analytically against the task's BCET, never against a run.

    BCET is computed once per task on the interference-free private
    platform: it lower-bounds every execution on every mode, contended
    ones included. *)

type mode =
  | Solo
  | Oblivious
  | Joint
  | Bypass
  | Columnized
  | Bankized
  | Locked
  | Dynamic

val all_modes : mode list
val mode_name : mode -> string
val mode_of_string : string -> (mode, string) result

type interp = [ `Block | `Reference | `Both ]
(** Which simulator interpreter the observed side runs on.  [`Both]
    runs the block interpreter *and* the per-instruction reference,
    cross-checks every field the block interpreter guarantees bit-exact
    (all of them on a halted run), reports any mismatch as an
    ["interpreter divergence: ..."] violation, and uses the reference
    result for the sandwich. *)

type engine = [ `Context | `Fresh ]
(** Which analysis engine computes the bound side.  [`Context] (the
    default) builds one mode-invariant {!Core.Context.t} per task and
    shares it across every mode's back end and the BCET side —
    the campaign's dominant cost becomes one front end per task.
    [`Fresh] re-runs the full front-to-back analysis per mode (the
    pre-context path, kept selectable as the differential oracle);
    both engines produce bit-identical reports. *)

type check = {
  mode : mode;
  shape : string;  (** platform/sub-configuration label *)
  task : string;
  core : int;
  bcet : int;
  wcet : int;  (** refined when the campaign ran with [?refine] *)
  unrefined : int option;
      (** the cut-free bound under [?refine] ([Wcet.unrefined_wcet]);
          [None] otherwise.  The sandwich always checks the {e refined}
          bound, so a campaign with [?refine] is also its soundness
          oracle: observed > refined WCET is a violation. *)
  observed : int option;  (** [None] for analytic-only checks *)
  a_vec : Pipeline.Cost.Vec.t;
      (** category decomposition of [wcet] (the root procedure's
          [wcet_vec]; zero when the analysis failed) *)
  o_vec : Pipeline.Cost.Vec.t option;
      (** the simulated core's observed attribution, when a run exists *)
}

type violation = {
  v_mode : mode;
  v_shape : string;
  v_task : string;
  v_core : int;
  reason : string;
  source : string;  (** assembly text of the offending program *)
}

type report = {
  checks : check list;
  violations : violation list;
  errors : string list;  (** infrastructure failures (pool job died) *)
}

val check_solo :
  ?memo:Core.Memo.t ->
  ?checkpoint:(unit -> unit) ->
  ?interp:interp ->
  ?engine:engine ->
  ?refine:Refine.config ->
  Generator.t ->
  report
(** The five [Solo] shapes for one program.  [checkpoint] is called
    between shapes (pass {!Engine.Pool.check} for cooperative
    timeouts).  [refine] turns on infeasible-path refinement on the
    WCET side (salted memo entries, see {!Core.Multicore}); the
    sandwich then validates the refined bound against the simulator. *)

val check_group :
  ?memo:Core.Memo.t ->
  ?checkpoint:(unit -> unit) ->
  ?interp:interp ->
  ?engine:engine ->
  ?refine:Refine.config ->
  modes:mode list ->
  Generator.t array ->
  report
(** One task group (one task per core, 1..4 cores) through every
    requested contended mode ([Solo] entries are ignored here).
    [Columnized] needs at most as many cores as the L2 has ways (4). *)

type mode_stats = {
  s_mode : mode;
  s_checks : int;
  s_violations : int;
  s_min_ratio : float;  (** min over checks of WCET / observed *)
  s_mean_ratio : float;
  s_max_ratio : float;
  s_gap : Pipeline.Cost.Vec.t;
      (** summed per-category pessimism [a_vec - o_vec] over the mode's
          simulated checks *)
  s_dominant_gap : Pipeline.Cost.category option;
      (** [Vec.dominant s_gap]; [None] for analytic-only modes *)
  s_mean_reduction : float option;
      (** mean of [(unrefined - wcet) / unrefined] over the mode's
          checks; [None] unless the campaign ran with [?refine] *)
}

type campaign = {
  seed : int;
  count : int;
  cores : int;
  modes : mode list;
  report : report;
  stats : mode_stats list;
  memo_stats : Engine.Lru.stats option;
}

val run_campaign :
  ?params:Generator.params ->
  ?modes:mode list ->
  ?cores:int ->
  ?workers:int ->
  ?memo:Core.Memo.t ->
  ?timeout_ns:int64 ->
  ?interp:interp ->
  ?engine:engine ->
  ?refine:Refine.config ->
  seed:int ->
  count:int ->
  unit ->
  campaign
(** Generates programs [0..count-1] of [seed], groups them into task
    sets of [cores] (default 4; the last group wraps around to fill its
    cores), and fans one {!Engine.Pool} job per group over [workers]
    domains.  Results are deterministic at any worker count.
    @raise Invalid_argument if [count <= 0] or [cores] outside 1..4. *)

val csv_header : string
(** [mode,shape,task,core,bcet,observed,wcet,ratio,dominant_gap,unrefined]
    — exposed separately so the CLI can emit (and flush) it before the
    campaign runs: a killed run leaves a parseable CSV. *)

val csv_rows : report -> string
(** One row per check; [dominant_gap] names the category dominating
    [a_vec - o_vec] (empty for analytic-only checks). *)

val csv_of_report : report -> string
(** [csv_header ^ csv_rows]. *)
