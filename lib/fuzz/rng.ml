type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* murmur3-style 64-bit finalizer: full avalanche, so consecutive seeds
   and indices land in unrelated regions of the state space. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  logxor z (shift_right_logical z 33)

let create ~seed = { state = mix (Int64.of_int seed) }

let of_pair ~seed ~index =
  { state = mix (Int64.add (mix (Int64.of_int seed)) (Int64.of_int index)) }

let copy t = { state = t.state }

(* splitmix64 step *)
let next64 t =
  t.state <- Int64.add t.state golden;
  let open Int64 in
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 63 non-negative bits; modulo bias is negligible for the small
     bounds the generator uses (< 2^16). *)
  Int64.to_int
    (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty interval";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float_of_int (int t 1_000_000) < (p *. 1e6)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))
