module P = Core.Platform
module M = Core.Multicore

type mode =
  | Solo
  | Oblivious
  | Joint
  | Bypass
  | Columnized
  | Bankized
  | Locked
  | Dynamic

let all_modes =
  [ Solo; Oblivious; Joint; Bypass; Columnized; Bankized; Locked; Dynamic ]

let mode_name = function
  | Solo -> "solo"
  | Oblivious -> "oblivious"
  | Joint -> "joint"
  | Bypass -> "bypass"
  | Columnized -> "columnized"
  | Bankized -> "bankized"
  | Locked -> "locked"
  | Dynamic -> "dynamic"

let mode_of_string s =
  match
    List.find_opt (fun m -> mode_name m = String.lowercase_ascii s) all_modes
  with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown mode %S (expected one of: %s)" s
           (String.concat ", " (List.map mode_name all_modes)))

type interp = [ `Block | `Reference | `Both ]
type engine = [ `Context | `Fresh ]

type check = {
  mode : mode;
  shape : string;
  task : string;
  core : int;
  bcet : int;
  wcet : int;
  unrefined : int option;
  observed : int option;
  a_vec : Pipeline.Cost.Vec.t;
  o_vec : Pipeline.Cost.Vec.t option;
}

type violation = {
  v_mode : mode;
  v_shape : string;
  v_task : string;
  v_core : int;
  reason : string;
  source : string;
}

type report = {
  checks : check list;
  violations : violation list;
  errors : string list;
}

let empty_report = { checks = []; violations = []; errors = [] }

let merge_reports rs =
  {
    checks = List.concat_map (fun r -> r.checks) rs;
    violations = List.concat_map (fun r -> r.violations) rs;
    errors = List.concat_map (fun r -> r.errors) rs;
  }

(* ---- bounds and machines --------------------------------------------- *)

(* With a [ctx], misses run the context back end; without one the fresh
   front-to-back analysis.  Both are bit-identical by contract — the
   [engine] parameter below exists exactly to differentially check
   that. *)
let wcet_result ?memo ?ctx ?refine ~annot platform program =
  let compute =
    match (ctx, refine) with
    | Some ctx, _ -> Some (fun () -> Core.Wcet.analyze_with ?refine ~ctx platform)
    | None, Some _ ->
        Some (fun () -> Core.Wcet.analyze ~annot ?refine platform program)
    | None, None -> None
  in
  (* Refined results carry a salt ({!Refine.salt}) so they never share a
     memo entry with the unrefined solo checks. *)
  let salt = Option.map Refine.salt refine in
  match memo with
  | None -> (
      match compute with
      | Some f -> f ()
      | None -> Core.Wcet.analyze ~annot platform program)
  | Some m -> Core.Memo.wcet m ~annot ?salt ?compute platform program

(* The root procedure's category decomposition of the bound. *)
let root_vec (w : Core.Wcet.t) =
  match List.rev w.Core.Wcet.procs with
  | (_, pr) :: _ -> pr.Core.Wcet.wcet_vec
  | [] -> Pipeline.Cost.Vec.zero

let bcet_bound ?memo ?ctx ~annot platform program =
  let compute =
    Option.map (fun ctx () -> Core.Bcet.analyze_with ~ctx platform) ctx
  in
  match memo with
  | None ->
      (match compute with
      | Some f -> f ()
      | None -> Core.Bcet.analyze ~annot platform program)
        .Core.Bcet.bcet
  | Some m -> (Core.Memo.bcet m ~annot ?compute platform program).Core.Bcet.bcet

(* The concrete single-core machine a platform describes (the analysis
   and the simulator must agree on geometry, refresh, and the
   instruction path). *)
let sim_config_of (p : P.t) =
  {
    Sim.Machine.latencies = p.P.latencies;
    l1i = p.P.l1i;
    l1d = p.P.l1d;
    l2 =
      (match p.P.l2 with
      | P.No_l2 -> Sim.Machine.No_l2
      | P.Private_l2 c -> Sim.Machine.Private_l2 [| c |]
      | P.Shared_l2 { config; _ } | P.Locked_l2 { config; _ } ->
          Sim.Machine.Shared_l2 config);
    arbiter = Interconnect.Arbiter.Private;
    refresh = p.P.refresh;
    i_path =
      (match p.P.method_cache with
      | None -> Sim.Machine.Conventional
      | Some mc -> Sim.Machine.Method_cache mc);
  }

let solo_shapes () =
  let l2_small = Cache.Config.make ~sets:16 ~assoc:2 ~line_size:16 in
  (* two sets of two ways: heavy eviction pressure with live ages, the
     shape where an optimistic must/may-join is most visible *)
  let tiny = Cache.Config.make ~sets:2 ~assoc:2 ~line_size:8 in
  [
    ("no-l2", P.single_core ());
    ("l2", P.single_core ~l2:l2_small ());
    ( "tiny-l1",
      { (P.single_core ~l2:l2_small ()) with P.l1i = tiny; l1d = tiny } );
    ( "refresh",
      {
        (P.single_core ()) with
        P.refresh =
          Interconnect.Arbiter.Distributed { interval = 128; duration = 12 };
      } );
    ( "method-cache",
      {
        (P.single_core ()) with
        P.method_cache = Some Cache.Method_cache.default;
      } );
  ]

(* A core's setup for a generated program: the diamond selectors the
   generator wants driven down their heavy arms are preloaded. *)
let setup_of (g : Generator.t) =
  {
    (Sim.Machine.task g.Generator.program) with
    Sim.Machine.init_data = g.Generator.data_init;
  }

(* ---- interpreter cross-check ----------------------------------------- *)

(* Run the simulator under the chosen interpreter.  [`Both] runs the
   block interpreter *and* the reference stepper and cross-checks every
   field the block interpreter guarantees bit-exactly (all of them on a
   halted run); a mismatch is a violation against the diverging core's
   task, and the reference result is the oracle-of-record downstream. *)
let sim_run ~(interp : interp) ~mode ~shape ~(g_of : int -> Generator.t) cfg
    ~cores () =
  match interp with
  | `Block -> (Sim.Machine.run ~interp:`Block cfg ~cores (), [])
  | `Reference -> (Sim.Machine.run ~interp:`Reference cfg ~cores (), [])
  | `Both ->
      let rb = Sim.Machine.run ~interp:`Block cfg ~cores () in
      let rr = Sim.Machine.run ~interp:`Reference cfg ~cores () in
      let vs = ref [] in
      Array.iteri
        (fun i (b : Sim.Machine.core_result) ->
          let r = rr.(i) in
          let mismatch =
            if b.Sim.Machine.cycles <> r.Sim.Machine.cycles then
              Some
                (Printf.sprintf "cycles: block %d, reference %d"
                   b.Sim.Machine.cycles r.Sim.Machine.cycles)
            else if b.Sim.Machine.halted <> r.Sim.Machine.halted then
              Some
                (Printf.sprintf "halted: block %b, reference %b"
                   b.Sim.Machine.halted r.Sim.Machine.halted)
            else if b.Sim.Machine.attrib <> r.Sim.Machine.attrib then
              Some "attribution vector differs"
            else if b.Sim.Machine.block_attrib <> r.Sim.Machine.block_attrib
            then Some "per-block attribution differs"
            else if
              b.Sim.Machine.bus_stall_cycles <> r.Sim.Machine.bus_stall_cycles
            then
              Some
                (Printf.sprintf "bus_stall_cycles: block %d, reference %d"
                   b.Sim.Machine.bus_stall_cycles r.Sim.Machine.bus_stall_cycles)
            else if b.Sim.Machine.max_bus_wait <> r.Sim.Machine.max_bus_wait
            then
              Some
                (Printf.sprintf "max_bus_wait: block %d, reference %d"
                   b.Sim.Machine.max_bus_wait r.Sim.Machine.max_bus_wait)
            else if not b.Sim.Machine.halted then
              (* truncated runs: only the fields above are promised *)
              None
            else if b.Sim.Machine.instructions <> r.Sim.Machine.instructions
            then
              Some
                (Printf.sprintf "instructions: block %d, reference %d"
                   b.Sim.Machine.instructions r.Sim.Machine.instructions)
            else if
              (b.Sim.Machine.l1i_hits, b.Sim.Machine.l1i_misses,
               b.Sim.Machine.l1d_hits, b.Sim.Machine.l1d_misses)
              <> (r.Sim.Machine.l1i_hits, r.Sim.Machine.l1i_misses,
                  r.Sim.Machine.l1d_hits, r.Sim.Machine.l1d_misses)
            then Some "L1 hit/miss counters differ"
            else if b.Sim.Machine.final_state <> r.Sim.Machine.final_state then
              Some "final architectural state differs"
            else None
          in
          match mismatch with
          | None -> ()
          | Some reason ->
              let g = g_of i in
              vs :=
                {
                  v_mode = mode;
                  v_shape = shape;
                  v_task = g.Generator.name;
                  v_core = i;
                  reason = "interpreter divergence: " ^ reason;
                  source = g.Generator.source;
                }
                :: !vs)
        rb;
      (rr, List.rev !vs)

(* ---- the sandwich ---------------------------------------------------- *)

let sandwich ?unrefined ~mode ~shape ~(g : Generator.t) ~core ~bcet ~wcet
    ~a_vec result =
  let check = { mode; shape; task = g.Generator.name; core; bcet; wcet;
                unrefined;
                observed = Option.map (fun (r : Sim.Machine.core_result) ->
                    r.Sim.Machine.cycles) result;
                a_vec;
                o_vec = Option.map (fun (r : Sim.Machine.core_result) ->
                    r.Sim.Machine.attrib) result }
  in
  let viol reason =
    Some
      {
        v_mode = mode;
        v_shape = shape;
        v_task = g.Generator.name;
        v_core = core;
        reason;
        source = g.Generator.source;
      }
  in
  let v =
    match result with
    | None ->
        if wcet < bcet then
          viol (Printf.sprintf "WCET bound %d below BCET bound %d" wcet bcet)
        else None
    | Some (r : Sim.Machine.core_result) ->
        if not r.Sim.Machine.halted then
          viol "simulation did not halt within the cycle horizon"
        else if r.Sim.Machine.cycles > wcet then
          viol
            (Printf.sprintf "observed %d cycles exceeds WCET bound %d"
               r.Sim.Machine.cycles wcet)
        else if bcet > r.Sim.Machine.cycles then
          viol
            (Printf.sprintf "BCET bound %d exceeds observed %d cycles" bcet
               r.Sim.Machine.cycles)
        else None
  in
  (check, v)

let collect pairs =
  {
    checks = List.map fst pairs;
    violations = List.filter_map snd pairs;
    errors = [];
  }

(* ---- solo mode ------------------------------------------------------- *)

let check_solo ?memo ?(checkpoint = fun () -> ())
    ?(interp : interp = `Block) ?(engine : engine = `Context) ?refine
    (g : Generator.t) =
  let annot = g.Generator.annot and program = g.Generator.program in
  let divergences = ref [] in
  let per_shape (shape, platform) =
    checkpoint ();
    match
      (* One context per shape (the shapes differ in geometry), shared
         by the WCET and BCET sides. *)
      let ctx =
        match engine with
        | `Context -> Some (Core.Context.of_platform ~annot platform program)
        | `Fresh -> None
      in
      let w = wcet_result ?memo ?ctx ?refine ~annot platform program in
      let bcet = bcet_bound ?memo ?ctx ~annot platform program in
      let rs, dv =
        sim_run ~interp ~mode:Solo ~shape
          ~g_of:(fun _ -> g)
          (sim_config_of platform)
          ~cores:[| setup_of g |] ()
      in
      divergences := !divergences @ dv;
      sandwich ?unrefined:w.Core.Wcet.unrefined_wcet ~mode:Solo ~shape ~g
        ~core:0 ~bcet ~wcet:w.Core.Wcet.wcet ~a_vec:(root_vec w)
        (Some rs.(0))
    with
    | pair -> pair
    | exception Core.Wcet.Not_analysable msg ->
        sandwich ~mode:Solo ~shape ~g ~core:0 ~bcet:0 ~wcet:(-1)
          ~a_vec:Pipeline.Cost.Vec.zero None
        |> fun (c, _) ->
        ( c,
          Some
            {
              v_mode = Solo;
              v_shape = shape;
              v_task = g.Generator.name;
              v_core = 0;
              reason = "analysis failed: " ^ msg;
              source = g.Generator.source;
            } )
  in
  let r = collect (List.map per_shape (solo_shapes ())) in
  { r with violations = r.violations @ !divergences }

(* ---- contended modes ------------------------------------------------- *)

(* The interference-free platform of [analyze_oblivious]: whole L2 as a
   private slice, no bus contention.  Its BCET lower-bounds every
   execution of the task on every mode. *)
let private_platform (sys : M.system) =
  {
    P.latencies = sys.M.latencies;
    l1i = sys.M.l1i;
    l1d = sys.M.l1d;
    l2 = P.Private_l2 sys.M.l2;
    arbiter = Interconnect.Arbiter.Private;
    core = 0;
    refresh = sys.M.refresh;
    mem_arbiter = None;
    method_cache = None;
  }

let check_group ?memo ?(checkpoint = fun () -> ())
    ?(interp : interp = `Block) ?(engine : engine = `Context) ?refine ~modes
    gens =
  let n = Array.length gens in
  if n < 1 then invalid_arg "Oracle.check_group: empty task group";
  let divergences = ref [] in
  let modes = List.filter (fun m -> m <> Solo) modes in
  let tasks =
    Array.map
      (fun (g : Generator.t) -> Some (g.Generator.program, g.Generator.annot))
      gens
  in
  let sys = M.default_system ~cores:n ~tasks in
  (* One context per task, shared across every contended mode and the
     BCET side (the private platform has the same L1 geometry).  This is
     the campaign's dominant cost: with contexts, each task pays one
     front end for the whole group run instead of one per mode. *)
  let ctxs =
    match engine with
    | `Context -> Some (M.contexts sys)
    | `Fresh -> None
  in
  let ctx_for core = Option.bind ctxs (fun a -> a.(core)) in
  let bcets =
    Array.mapi
      (fun i (g : Generator.t) ->
        bcet_bound ?memo ?ctx:(ctx_for i) ~annot:g.Generator.annot
          (private_platform sys) g.Generator.program)
      gens
  in
  let plain_setups = Array.map setup_of gens in
  (* All group runs share the interpreter cross-check plumbing. *)
  let sim ~mode ~shape ~g_of cfg ~cores =
    let rs, dv = sim_run ~interp ~mode ~shape ~g_of cfg ~cores () in
    divergences := !divergences @ dv;
    rs
  in
  (* One sandwich per core, against either a per-core result array, a
     per-core solo run, or nothing (analytic modes). *)
  let per_core ~mode ~shape results result_for =
    List.filter_map
      (fun core ->
        match results.(core) with
        | None -> None
        | Some (w : Core.Wcet.t) ->
            Some
              (sandwich ?unrefined:w.Core.Wcet.unrefined_wcet ~mode ~shape
                 ~g:gens.(core) ~core ~bcet:bcets.(core)
                 ~wcet:w.Core.Wcet.wcet ~a_vec:(root_vec w) (result_for core)))
      (List.init n (fun i -> i))
  in
  let run_mode mode =
    checkpoint ();
    match mode with
    | Solo -> []
    | Oblivious ->
        (* only claimed solo: validate each task owning the machine *)
        let ws = M.analyze_oblivious ?memo ?ctxs ?refine sys in
        let cfg =
          {
            (M.machine_config sys ~l2:(Sim.Machine.Private_l2 [| sys.M.l2 |]))
            with
            Sim.Machine.arbiter = Interconnect.Arbiter.Private;
          }
        in
        per_core ~mode ~shape:"private-l2" ws (fun core ->
            Some
              (sim ~mode ~shape:"private-l2"
                 ~g_of:(fun _ -> gens.(core))
                 cfg
                 ~cores:[| plain_setups.(core) |]).(0))
    | Joint ->
        let ws = M.analyze_joint ?memo ?ctxs ?refine sys () in
        let rs =
          sim ~mode ~shape:"shared-l2"
            ~g_of:(fun i -> gens.(i))
            (M.machine_config sys ~l2:(Sim.Machine.Shared_l2 sys.M.l2))
            ~cores:plain_setups
        in
        per_core ~mode ~shape:"shared-l2" ws (fun core -> Some rs.(core))
    | Bypass ->
        let ws = M.analyze_joint ?memo ?ctxs ?refine sys ~bypass:true () in
        let setups =
          Array.mapi
            (fun core (g : Generator.t) ->
              let lines =
                M.bypass_lines ?ctx:(ctx_for core) sys
                  (g.Generator.program, g.Generator.annot)
              in
              let set = Hashtbl.create (2 * List.length lines) in
              List.iter (fun l -> Hashtbl.replace set l ()) lines;
              {
                (setup_of g) with
                Sim.Machine.l2_bypass = (fun l -> Hashtbl.mem set l);
              })
            gens
        in
        let rs =
          sim ~mode ~shape:"shared-l2+bypass"
            ~g_of:(fun i -> gens.(i))
            (M.machine_config sys ~l2:(Sim.Machine.Shared_l2 sys.M.l2))
            ~cores:setups
        in
        per_core ~mode ~shape:"shared-l2+bypass" ws (fun core -> Some rs.(core))
    | Columnized | Bankized ->
        let scheme =
          if mode = Columnized then Cache.Partition.Columnization
          else Cache.Partition.Bankization
        in
        let ws = M.analyze_partitioned ?memo ?ctxs ?refine sys ~scheme in
        let alloc = Cache.Partition.even_shares scheme sys.M.l2 ~parts:n in
        let slices =
          Array.init n (fun i ->
              Cache.Partition.partition_config sys.M.l2 alloc ~index:i)
        in
        let shape = if mode = Columnized then "l2-columns" else "l2-banks" in
        let rs =
          sim ~mode ~shape
            ~g_of:(fun i -> gens.(i))
            (M.machine_config sys ~l2:(Sim.Machine.Private_l2 slices))
            ~cores:plain_setups
        in
        per_core ~mode
          ~shape
          ws
          (fun core -> Some rs.(core))
    | Locked ->
        let selection = M.static_lock_selection ?memo ?ctxs sys in
        let ws = M.analyze_locked ?memo ?ctxs ?refine sys in
        let setups =
          Array.map
            (fun s ->
              {
                s with
                Sim.Machine.locked_l2_lines =
                  selection.Cache.Locking.locked;
              })
            plain_setups
        in
        let rs =
          sim ~mode ~shape:"locked-l2"
            ~g_of:(fun i -> gens.(i))
            (M.machine_config sys ~l2:(Sim.Machine.Shared_l2 sys.M.l2))
            ~cores:setups
        in
        per_core ~mode ~shape:"locked-l2" ws (fun core -> Some rs.(core))
    | Dynamic ->
        (* analysis-level only: the machine cannot reprogram lock bits *)
        let ws = M.analyze_locked_dynamic ?memo ?ctxs ?refine sys in
        per_core ~mode ~shape:"locked-l2-dynamic" ws (fun _ -> None)
  in
  let per_mode mode =
    match run_mode mode with
    | pairs -> collect pairs
    | exception Core.Wcet.Not_analysable msg ->
        {
          empty_report with
          violations =
            [
              {
                v_mode = mode;
                v_shape = "group";
                v_task =
                  String.concat "+"
                    (Array.to_list
                       (Array.map (fun g -> g.Generator.name) gens));
                v_core = -1;
                reason = "analysis failed: " ^ msg;
                source = gens.(0).Generator.source;
              };
            ];
        }
  in
  let r = merge_reports (List.map per_mode modes) in
  { r with violations = r.violations @ !divergences }

(* ---- campaign -------------------------------------------------------- *)

type mode_stats = {
  s_mode : mode;
  s_checks : int;
  s_violations : int;
  s_min_ratio : float;
  s_mean_ratio : float;
  s_max_ratio : float;
  s_gap : Pipeline.Cost.Vec.t;
  s_dominant_gap : Pipeline.Cost.category option;
  s_mean_reduction : float option;
}

type campaign = {
  seed : int;
  count : int;
  cores : int;
  modes : mode list;
  report : report;
  stats : mode_stats list;
  memo_stats : Engine.Lru.stats option;
}

let stats_of report modes =
  List.filter_map
    (fun mode ->
      let checks = List.filter (fun c -> c.mode = mode) report.checks in
      if checks = [] then None
      else
        let ratios =
          List.filter_map
            (fun c ->
              match c.observed with
              | Some obs when obs > 0 ->
                  Some (float_of_int c.wcet /. float_of_int obs)
              | _ -> None)
            checks
        in
        let violations =
          List.length
            (List.filter (fun v -> v.v_mode = mode) report.violations)
        in
        let min_r = List.fold_left min infinity ratios in
        let max_r = List.fold_left max 0.0 ratios in
        let mean_r =
          if ratios = [] then 0.0
          else List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
        in
        let gap =
          List.fold_left
            (fun acc c ->
              match c.o_vec with
              | Some o ->
                  Pipeline.Cost.Vec.add acc (Pipeline.Cost.Vec.sub c.a_vec o)
              | None -> acc)
            Pipeline.Cost.Vec.zero checks
        in
        let any_observed = List.exists (fun c -> c.o_vec <> None) checks in
        let reductions =
          List.filter_map
            (fun c ->
              match c.unrefined with
              | Some u when u > 0 ->
                  Some (float_of_int (u - c.wcet) /. float_of_int u)
              | _ -> None)
            checks
        in
        Some
          {
            s_mode = mode;
            s_checks = List.length checks;
            s_violations = violations;
            s_min_ratio = (if ratios = [] then 0.0 else min_r);
            s_mean_ratio = mean_r;
            s_max_ratio = max_r;
            s_gap = gap;
            s_dominant_gap =
              (if any_observed then Some (Pipeline.Cost.Vec.dominant gap)
               else None);
            s_mean_reduction =
              (if reductions = [] then None
               else
                 Some
                   (List.fold_left ( +. ) 0.0 reductions
                   /. float_of_int (List.length reductions)));
          })
    modes

let run_campaign ?(params = Generator.default_params) ?(modes = all_modes)
    ?(cores = 4) ?workers ?memo ?timeout_ns ?(interp : interp = `Block)
    ?(engine : engine = `Context) ?refine ~seed ~count () =
  if count <= 0 then invalid_arg "Oracle.run_campaign: count must be positive";
  if cores < 1 || cores > 4 then
    invalid_arg "Oracle.run_campaign: cores must be in 1..4 (the L2 has 4 ways)";
  let groups = (count + cores - 1) / cores in
  let contended = List.filter (fun m -> m <> Solo) modes in
  let jobs =
    List.init groups (fun gi ->
        Engine.Pool.job ~label:(Printf.sprintf "fuzz-group-%d" gi) (fun ctx ->
            let checkpoint () = Engine.Pool.check ctx in
            (* the last group wraps around to keep one task per core;
               wrapped tasks are re-checked contended but not solo *)
            let gens =
              Array.init cores (fun k ->
                  Generator.generate ~params ~seed
                    ~index:(((gi * cores) + k) mod count)
                    ())
            in
            let solo =
              if List.mem Solo modes then
                List.filter_map
                  (fun k ->
                    if (gi * cores) + k < count then
                      Some
                        (check_solo ?memo ~checkpoint ~interp ~engine ?refine
                           gens.(k))
                    else None)
                  (List.init cores (fun i -> i))
              else []
            in
            let grouped =
              if contended = [] then empty_report
              else
                check_group ?memo ~checkpoint ~interp ~engine ?refine
                  ~modes:contended gens
            in
            merge_reports (solo @ [ grouped ])))
  in
  let outcomes = Engine.Pool.run ?workers ?timeout_ns jobs in
  let reports =
    List.map
      (function
        | Engine.Pool.Done r -> r
        | Engine.Pool.Failed { label; error } ->
            {
              empty_report with
              errors = [ Printf.sprintf "%s raised: %s" label error ];
            }
        | Engine.Pool.Timed_out { label; after_ns } ->
            {
              empty_report with
              errors =
                [
                  Printf.sprintf "%s timed out after %.1fs" label
                    (Int64.to_float after_ns /. 1e9);
                ];
            })
      outcomes
  in
  let report = merge_reports reports in
  {
    seed;
    count;
    cores;
    modes;
    report;
    stats = stats_of report modes;
    memo_stats = Option.map Core.Memo.stats memo;
  }

let csv_header =
  "mode,shape,task,core,bcet,observed,wcet,ratio,dominant_gap,unrefined\n"

let csv_rows report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      let observed, ratio =
        match c.observed with
        | Some o when o > 0 ->
            (string_of_int o,
             Printf.sprintf "%.3f" (float_of_int c.wcet /. float_of_int o))
        | Some o -> (string_of_int o, "")
        | None -> ("", "")
      in
      let dominant =
        match c.o_vec with
        | Some o ->
            Pipeline.Cost.category_name
              (Pipeline.Cost.Vec.dominant (Pipeline.Cost.Vec.sub c.a_vec o))
        | None -> ""
      in
      let unrefined =
        match c.unrefined with Some u -> string_of_int u | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%d,%s,%d,%s,%s,%s\n" (mode_name c.mode)
           c.shape c.task c.core c.bcet observed c.wcet ratio dominant
           unrefined))
    report.checks;
  Buffer.contents buf

let csv_of_report report = csv_header ^ csv_rows report
