(** Seeded random MiniRISC program generator.

    Programs are built from a small structured-control-flow algebra
    ({!piece}) chosen so that *every* generated program is, by
    construction:

    - terminating: loops are counted (a [li]-initialized down-counter)
      or polls of I/O values the fresh machine reads as zero;
    - analysable: reducible CFGs, no recursion, and every loop header
      carries a loop-bound annotation, so IPET stays decidable even when
      automatic bound inference declines (e.g. calls inside loops);
    - fault-free: memory addresses come only from immediates and loop
      counters (never from loaded data), clamped inside each space
      ([Data]/[Stack]/[Io]) of {!Isa.Exec};
    - architecture-independent in its *path*: no timing-dependent control
      flow, so one program can be replayed against every platform shape
      and the same annotation stays exact.

    {!assemble} is total over arbitrary piece lists (all quantities are
    clamped, over-deep loops are flattened), which is what makes QCheck
    shrinking over pieces safe. *)

(** Loop-body payload operations.  Offsets are word indices interpreted
    against the op's memory space; [Load_indexed] adds the innermost
    active loop counter to the offset (a strided access pattern). *)
type op =
  | Alu_burst of int  (** [n] dependent ALU instructions (incl. mul/div) *)
  | Load of Isa.Instr.space * int
  | Store of Isa.Instr.space * int
  | Load_indexed of Isa.Instr.space * int

type piece =
  | Straight of op list
  | Loop of { iters : int; body : piece list }
      (** counted loop, executes [iters] times (clamped to 1..64) *)
  | Diamond of { sel_off : int; heavy : op list; light : op list }
      (** if/else on a loaded data word; [heavy] is the fallthrough arm *)
  | Call of int  (** call helper procedure [h(k mod 3)] *)
  | Io_poll of { off : int; bound : int }
      (** countdown on an I/O word (reads 0 on a fresh machine, so the
          simulator exits immediately; the analysis charges [bound]) *)

type params = {
  max_pieces : int;  (** top-level pieces per program *)
  max_ops : int;  (** ops per straight-line run / diamond arm *)
  max_iters : int;  (** loop trip counts drawn from [2, max_iters] *)
  max_depth : int;  (** loop nesting depth (hard cap 3) *)
  locality : float;  (** probability an offset falls in the hot window *)
  io_density : float;  (** probability a memory op targets the I/O space *)
  call_density : float;  (** probability a piece slot becomes a call *)
}

val default_params : params

type t = {
  name : string;
  pieces : piece list;  (** the shape the program was assembled from *)
  source : string;  (** assembly text — print this to reproduce a failure *)
  program : Isa.Program.t;
  annot : Dataflow.Annot.t;  (** loop bounds for every generated header *)
  data_init : (int * int) list;
      (** data words to preload before simulation: diamonds with odd
          selector offsets get a nonzero selector, so simulated paths
          exercise the heavy arms too (a fresh machine reads 0
          everywhere and would always fall into the light arms,
          masking optimistic-join bugs on the heavy paths) *)
}

val random_pieces : Rng.t -> params -> piece list

val assemble : ?name:string -> piece list -> t
(** Total: clamps out-of-range quantities rather than rejecting them. *)

val generate : ?params:params -> seed:int -> index:int -> unit -> t
(** Program [index] of campaign [seed] — deterministic across machines,
    OCaml versions, and worker counts; named ["fuzz-<seed>-<index>"]. *)
