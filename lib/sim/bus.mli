(** Concrete shared-bus arbiter, cycle-stepped.

    One transaction is in service at a time; arbitration picks the next
    transaction among pending requests according to the configured policy.
    The simulator uses this to *measure* waiting times, which the
    experiments compare against the {!Interconnect.Arbiter} bounds
    (observed <= bound is the soundness check). *)

type t

val create : Interconnect.Arbiter.t -> t

val request : t -> core:int -> latency:int -> unit
(** Enqueue a transaction.  At most one outstanding request per core (the
    cores in this platform block on their memory accesses).
    @raise Invalid_argument on a second outstanding request. *)

val pending : t -> core:int -> bool
(** Request issued and not yet completed. *)

val has_pending : t -> bool
(** Any core has an outstanding request. *)

val in_service : t -> (int * int) option
(** The transaction currently being serviced, as [(core, remaining
    cycles)].  Exposed so the block interpreter can size bulk-skip
    windows without changing arbitration behaviour. *)

val step : t -> unit
(** Advance one cycle: start a service if the bus is idle and the policy
    allows, then progress the in-flight service. *)

val skip : t -> int -> unit
(** [skip t k] advances [k] cycles at once.  Bit-equivalent to [k]
    successive {!step}s *provided* no arbitration decision can fall in
    the window: either a service is in flight with [k <=] its remaining
    cycles, or the bus is idle with no pending request.  Wait/service
    accounting is applied in bulk.
    @raise Invalid_argument if the precondition is violated or
    [k <= 0]. *)

val now : t -> int
(** Cycles stepped so far (drives TDMA slot positions). *)

val max_wait : t -> core:int -> int
(** Largest observed request-to-service-start wait for that core. *)

val total_wait : t -> core:int -> int

val wait_cycles : t -> core:int -> int
(** Cycles the core's transactions spent pending but *not* in service —
    pure arbitration interference from co-runners (plus TDMA slot
    alignment).  Counted per bus step. *)

val service_cycles : t -> core:int -> int
(** Cycles the core's transactions spent being serviced (their own
    latency).  [wait_cycles + service_cycles] = pending cycles total. *)

val serving : t -> core:int -> bool
(** The bus is currently servicing this core's transaction.  Between
    steps, this is what a stalled core observes: a stall cycle with
    [serving = false] is arbitration wait, one with [serving = true] is
    the transaction's own service latency. *)
