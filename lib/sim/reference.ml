(* The original per-instruction cycle stepper, kept as the differential
   oracle for the block-predecoded interpreter (the same pattern the
   solver used in PR 3: the slow, obviously-correct implementation stays
   and every fast-path result can be checked against it).

   Two deliberate performance fixes relative to the pre-split code, both
   semantics-preserving so the oracle itself is not uselessly slow:
   - the decoded instruction is planned once and cached on the core
     instead of being re-fetched from the program by [Isa.Exec.step] at
     retire time (the stall-replay path used to re-decode);
   - a [Local] work item counts down in place instead of re-consing the
     queue head every stall cycle.
   Everything else is verbatim, including the one-cycle cost of a
   degenerate [Local (_, 0)] head. *)

open Machine_core

(* Work items of the current instruction, consumed cycle by cycle.  Each
   [Local] cycle is tagged with its attribution category; a bus
   transaction's vector is charged at issue (see [Machine_core.tx]). *)
type work =
  | Local of { cat : Pipeline.Cost.category; mutable left : int }
  | Bus_tx of tx

type core_state = {
  id : int;
  ci : core_init;
  mutable cur_ins : Isa.Instr.t;  (* decoded instruction at [exec.pc] *)
  mutable queue : work list;
  mutable waiting_bus : bool;
  mutable done_cycle : int option;
  mutable instructions : int;
  mutable bus_stall_cycles : int;
  attrib : int array;  (* indexed by Pipeline.Cost.category_index *)
  block_attrib : (string * int, int array) Hashtbl.t option;
  mutable cur_block : (string * int) option;
}

let bump core cat n =
  let i = Pipeline.Cost.category_index cat in
  core.attrib.(i) <- core.attrib.(i) + n;
  match (core.block_attrib, core.cur_block) with
  | Some tbl, Some loc ->
      let arr =
        match Hashtbl.find_opt tbl loc with
        | Some a -> a
        | None ->
            let a = Array.make ncats 0 in
            Hashtbl.add tbl loc a;
            a
      in
      arr.(i) <- arr.(i) + n
  | _ -> ()

let bump_vec core v =
  List.iter
    (fun (cat, n) -> if n <> 0 then bump core cat n)
    (Pipeline.Cost.Vec.to_alist v)

(* Build the work list for the instruction at the current pc. *)
let plan_instruction cfg bus core =
  let lat = cfg.latencies in
  let ci = core.ci in
  let pc = ci.ci_exec.Isa.Exec.pc in
  let ins = Isa.Program.instr ci.ci_program pc in
  core.cur_ins <- ins;
  let clock = Bus.now bus in
  (match ci.ci_locs with
  | Some locs -> core.cur_block <- locs.(pc)
  | None -> ());
  let fetch_addr = Isa.Program.addr_of_index ci.ci_program pc in
  let l1_lookup () =
    Local { cat = Pipeline.Cost.Compute; left = lat.Pipeline.Latencies.l1_hit }
  in
  let miss_tx addr =
    miss_tx cfg ~l2:ci.ci_l2 ~l2_bypass:ci.ci_l2_bypass clock addr
  in
  let fetch =
    match ci.ci_mcache with
    | Some _ -> [ l1_lookup () ]
    | None -> (
        match Cache.Concrete.access ci.ci_l1i fetch_addr with
        | `Hit -> [ l1_lookup () ]
        | `Miss -> [ l1_lookup (); Bus_tx (miss_tx fetch_addr) ])
  in
  (* Method cache: call and return may need to load the target function. *)
  let mc_control =
    let mc_load target st =
      match mcache_miss_tx lat st target with
      | None -> []
      | Some tx -> [ Bus_tx tx ]
    in
    match ci.ci_mcache with
    | None -> []
    | Some st -> (
        match ins with
        | Isa.Instr.Call l ->
            mc_load (Isa.Program.label_index ci.ci_program l) st
        | Isa.Instr.Ret -> (
            match ci.ci_exec.Isa.Exec.call_stack with
            | r :: _ -> mc_load r st
            | [] -> [])
        | _ -> [])
  in
  let exec =
    (* Split compute from the redirect penalty, preserving the total
       cycle count (a [Local (_, 0)] head would cost a spurious cycle). *)
    let compute, stall = Pipeline.Latencies.exec_split lat ins in
    if compute > 0 && stall > 0 then
      [
        Local { cat = Pipeline.Cost.Compute; left = compute };
        Local { cat = Pipeline.Cost.Stall; left = stall };
      ]
    else if stall > 0 then [ Local { cat = Pipeline.Cost.Stall; left = stall } ]
    else [ Local { cat = Pipeline.Cost.Compute; left = compute } ]
  in
  let data =
    match ins with
    | Isa.Instr.Load (sp, _, rb, off) | Isa.Instr.Store (sp, _, rb, off) ->
        let idx = ci.ci_exec.Isa.Exec.regs.(rb) + off in
        let addr = Isa.Layout.byte_addr sp idx in
        if Isa.Layout.is_cacheable sp then
          match Cache.Concrete.access ci.ci_l1d addr with
          | `Hit -> [ l1_lookup () ]
          | `Miss -> [ l1_lookup (); Bus_tx (miss_tx addr) ]
        else
          (* The device's own service time is work, not interference. *)
          [
            Bus_tx
              {
                tx_latency = lat.Pipeline.Latencies.io;
                tx_vec =
                  Pipeline.Cost.Vec.make Pipeline.Cost.Compute
                    lat.Pipeline.Latencies.io;
              };
          ]
    | Isa.Instr.Alu _ | Isa.Instr.Alui _ | Isa.Instr.Branch _
    | Isa.Instr.Jump _ | Isa.Instr.Call _ | Isa.Instr.Ret | Isa.Instr.Nop
    | Isa.Instr.Halt ->
        []
  in
  core.queue <- fetch @ mc_control @ exec @ data

(* Retire the instruction whose work just drained and plan the next; the
   retire itself costs no cycles (its cost is in the consumed work). *)
let retire_and_plan cfg bus core =
  core.instructions <- core.instructions + 1;
  match Isa.Exec.step_decoded core.ci.ci_program core.ci.ci_exec core.cur_ins with
  | Some _ when not (Isa.Exec.halted core.ci.ci_exec) ->
      plan_instruction cfg bus core
  | Some _ | None -> core.done_cycle <- Some (Bus.now bus)

(* One simulation cycle for a core: either stall on the bus or consume
   exactly one unit of work. *)
let step_core cfg bus core =
  if core.done_cycle = None then begin
    if core.waiting_bus && not (Bus.pending bus ~core:core.id) then
      core.waiting_bus <- false;
    if core.waiting_bus then begin
      core.bus_stall_cycles <- core.bus_stall_cycles + 1;
      (* Serviced stall cycles were already charged at issue via the
         transaction's breakdown; the rest is arbitration wait. *)
      if not (Bus.serving bus ~core:core.id) then
        bump core Pipeline.Cost.Bus 1
    end;
    if not core.waiting_bus then begin
      if core.queue = [] then retire_and_plan cfg bus core;
      if core.done_cycle = None then
        match core.queue with
        | Local l :: rest ->
            bump core l.cat 1;
            if l.left <= 1 then core.queue <- rest else l.left <- l.left - 1
        | Bus_tx tx :: rest ->
            (* Charge the whole service latency now (this issue cycle
               plus the latency-minus-one serviced stall cycles). *)
            bump_vec core tx.tx_vec;
            Bus.request bus ~core:core.id ~latency:tx.tx_latency;
            core.waiting_bus <- true;
            core.queue <- rest
        | [] -> assert false (* plan always yields at least the fetch *)
    end
  end

let run cfg ~cores ?(max_cycles = 10_000_000) () =
  let n = Array.length cores in
  let bus = Bus.create cfg.arbiter in
  let l2_for = make_l2s cfg n in
  let states =
    Array.mapi
      (fun i (setup : core_setup) ->
        match init_core cfg l2_for i setup with
        | None -> None
        | Some ci ->
            let core =
              {
                id = i;
                ci;
                cur_ins = Isa.Instr.Nop;
                queue = [];
                waiting_bus = false;
                done_cycle = None;
                instructions = 0;
                bus_stall_cycles = 0;
                attrib = Array.make ncats 0;
                block_attrib =
                  (if ci.ci_attrib_blocks then Some (Hashtbl.create 64)
                   else None);
                cur_block = None;
              }
            in
            plan_instruction cfg bus core;
            (* The entry function itself must be loaded first. *)
            (match ci.ci_mcache with
            | Some st -> (
                match
                  mcache_miss_tx cfg.latencies st
                    ci.ci_program.Isa.Program.entry
                with
                | Some tx -> core.queue <- Bus_tx tx :: core.queue
                | None -> ())
            | None -> ());
            Some core)
      cores
  in
  let all_done () =
    Array.for_all
      (function None -> true | Some c -> c.done_cycle <> None)
      states
  in
  let rec loop cycles =
    if cycles >= max_cycles || all_done () then ()
    else begin
      Array.iter
        (function None -> () | Some c -> step_core cfg bus c)
        states;
      Bus.step bus;
      loop (cycles + 1)
    end
  in
  loop 0;
  Array.mapi
    (fun i state ->
      match state with
      | None -> idle_result
      | Some c ->
          result_of ~bus ~core:i ~ci:c.ci ~done_cycle:c.done_cycle
            ~instructions:c.instructions
            ~bus_stall_cycles:c.bus_stall_cycles ~attrib:c.attrib
            ~block_attrib:c.block_attrib)
    states
