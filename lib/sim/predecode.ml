(* Block-predecoded simulator interpreter — the hot path behind
   [Machine.run ~interp:`Block] (the default).

   Each program is decoded once into a flat array of micro-ops: fetch
   address, (compute, stall) split, data-access shape, and the
   instruction semantics with label targets resolved to instruction
   indices.  Basic-block boundaries (leaders = entry, branch targets,
   successors of control instructions) mark where dispatch can stop.

   Execution then differs from [Reference] only in bookkeeping, never in
   the cycle-by-cycle observable schedule:

   - Work is queued in flat integer arrays instead of a list, so stall
     replay allocates nothing.

   - When the platform timing is clock-independent for planning purposes
     (burst refresh, conventional instruction path, and an L2 that is
     private or uncontended), a whole basic block is planned and its
     semantics applied at dispatch time ("batch" mode).  Planning an
     instruction only reads the clock through [refresh_extra] (constant
     under burst refresh) and the caches (private under the condition
     above), and plan(i) reads registers written by exec(i-1), so
     interleaving plan/exec per micro-op at dispatch produces exactly
     the cache-access sequence and transaction latencies the reference
     produces at its spread-out plan times.  Otherwise every micro-op is
     planned at its reference plan cycle (per-uop fallback; dynamic
     control flow also retires per-uop in that mode).

   - Stretches of cycles in which no event can occur — no plan, no bus
     issue, no arbitration decision, no service completion — are
     advanced in bulk: local work, bus-stall counters and the bus's own
     wait/service accounting are all linear in such a window, so the
     counters come out bit-identical ([Bus.skip] is the bus half of
     this).

   Exactness caveat (documented in machine.mli): on *truncated*
   (non-halted) batch-mode runs, instruction counts, cache stats and the
   final architectural state can run ahead of the reference because
   sems/accesses are applied at dispatch; cycles and the attribution
   vectors are still exact, and halted runs are bit-identical in every
   field. *)

open Machine_core

let compute_i = Pipeline.Cost.category_index Pipeline.Cost.Compute
let stall_i = Pipeline.Cost.category_index Pipeline.Cost.Stall
let bus_i = Pipeline.Cost.category_index Pipeline.Cost.Bus

type daccess =
  | D_none
  | D_mem of { d_space : Isa.Instr.space; d_base : int; d_off : int }
  | D_io

(* Instruction semantics with statically resolved control targets. *)
type sem =
  | S_alu of Isa.Instr.alu_op * int * int * int
  | S_alui of Isa.Instr.alu_op * int * int * int
  | S_load of Isa.Instr.space * int * int * int
  | S_store of Isa.Instr.space * int * int * int
  | S_branch of Isa.Instr.cond * int * int * int
  | S_jump of int
  | S_call of int
  | S_ret
  | S_nop
  | S_halt

type uop = {
  u_pc : int;
  u_fetch_addr : int;
  u_fetch_line : int;  (* L1I line of [u_fetch_addr], precomputed *)
  u_compute : int;
  u_stall : int;
  u_sem : sem;
  u_data : daccess;
  u_last : bool;  (* last micro-op of its basic block *)
  (* Static local-slot template for the common case where the fetch hits
     L1I: the micro-op's local cycles always collapse to at most three
     slots — compute (fetch lookup, fused with execute compute and, when
     there is no stall, the data lookup), stall, and a trailing compute
     slot for the data lookup when a stall separates it.  Zero means
     "slot absent" (slot 1 is always present and >= 1). *)
  u_t1 : int;
  u_t2 : int;
  u_t3 : int;
}

type t = { d_uops : uop array; d_nblocks : int; d_max_block : int }

let decode cfg (program : Isa.Program.t) =
  let lat = cfg.latencies in
  let code = program.Isa.Program.code in
  let n = Array.length code in
  let leader = Array.make (n + 1) true in
  Array.fill leader 1 (max 0 (n - 1)) false;
  let entry = program.Isa.Program.entry in
  if entry >= 0 && entry < n then leader.(entry) <- true;
  Array.iteri
    (fun i ins ->
      (match ins with
      | Isa.Instr.Branch (_, _, _, l) | Isa.Instr.Jump l | Isa.Instr.Call l
        ->
          leader.(Isa.Program.label_index program l) <- true
      | _ -> ());
      if Isa.Instr.is_control ins then leader.(i + 1) <- true)
    code;
  let d_uops =
    Array.mapi
      (fun i ins ->
        let u_compute, u_stall = Pipeline.Latencies.exec_split lat ins in
        let data_of sp rb off =
          if Isa.Layout.is_cacheable sp then
            D_mem { d_space = sp; d_base = rb; d_off = off }
          else D_io
        in
        let target l = Isa.Program.label_index program l in
        let u_sem, u_data =
          match ins with
          | Isa.Instr.Alu (op, rd, rs1, rs2) ->
              (S_alu (op, rd, rs1, rs2), D_none)
          | Isa.Instr.Alui (op, rd, rs1, imm) ->
              (S_alui (op, rd, rs1, imm), D_none)
          | Isa.Instr.Load (sp, rd, rb, off) ->
              (S_load (sp, rd, rb, off), data_of sp rb off)
          | Isa.Instr.Store (sp, rv, rb, off) ->
              (S_store (sp, rv, rb, off), data_of sp rb off)
          | Isa.Instr.Branch (c, r1, r2, l) ->
              (S_branch (c, r1, r2, target l), D_none)
          | Isa.Instr.Jump l -> (S_jump (target l), D_none)
          | Isa.Instr.Call l -> (S_call (target l), D_none)
          | Isa.Instr.Ret -> (S_ret, D_none)
          | Isa.Instr.Nop -> (S_nop, D_none)
          | Isa.Instr.Halt -> (S_halt, D_none)
        in
        let u_fetch_addr = Isa.Program.addr_of_index program i in
        (* Mirror the enqueue/fusion logic of [append_uop]'s general
           path, assuming the fetch hits (no transaction splits the
           compute run). *)
        let h =
          let x = lat.Pipeline.Latencies.l1_hit in
          if x <= 0 then 1 else x
        in
        let has_mem = match u_data with D_mem _ -> true | _ -> false in
        let u_t1, u_t2, u_t3 =
          if u_stall > 0 then
            ( (if u_compute > 0 then h + u_compute else h),
              u_stall,
              if has_mem then h else 0 )
          else
            let c = if u_compute <= 0 then 1 else u_compute in
            (h + c + (if has_mem then h else 0), 0, 0)
        in
        {
          u_pc = i;
          u_fetch_addr;
          u_fetch_line = Cache.Config.line_of_addr cfg.l1i u_fetch_addr;
          u_compute;
          u_stall;
          u_sem;
          u_data;
          u_last = leader.(i + 1);
          u_t1;
          u_t2;
          u_t3;
        })
      code
  in
  let d_nblocks = ref 0 and d_max_block = ref 0 and cur = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then incr d_nblocks;
    incr cur;
    if leader.(i + 1) then begin
      if !cur > !d_max_block then d_max_block := !cur;
      cur := 0
    end
  done;
  { d_uops; d_nblocks = !d_nblocks; d_max_block = !d_max_block }

(* Decode is pure, and the same program is re-simulated constantly (the
   tightness table runs it under eight approach modes; the differential
   oracle under two interpreters), so memoize per (latencies, l1i
   geometry, program) — the only inputs [decode] reads — keyed by
   physical equality in a small ring.  Entries are immutable triples, so
   a racy read from concurrent serving threads at worst misses and
   re-decodes. *)
let decode_cache : (Pipeline.Latencies.t * Cache.Config.t * Isa.Program.t * t) option array
    =
  Array.make 32 None

let decode_cache_pos = ref 0

let decode_cached cfg program =
  let rec find i =
    if i >= Array.length decode_cache then None
    else
      match decode_cache.(i) with
      | Some (lat, l1i, p, d)
        when lat == cfg.latencies && l1i == cfg.l1i && p == program ->
          Some d
      | _ -> find (i + 1)
  in
  match find 0 with
  | Some d -> d
  | None ->
      let d = decode cfg program in
      decode_cache.(!decode_cache_pos) <- Some (cfg.latencies, cfg.l1i, program, d);
      decode_cache_pos := (!decode_cache_pos + 1) mod Array.length decode_cache;
      d

type core_state = {
  id : int;
  ci : core_init;
  dec : t;
  (* Flat work queue, reset at every refill (it always drains before new
     work is planned).  A slot is a run of local cycles (q_cat >= 0, the
     category index; q_arg the run length) or a bus transaction
     (q_cat = -1; q_arg the latency; ncats vector ints in q_vec). *)
  q_cat : int array;
  q_arg : int array;
  q_vec : int array;
  q_loc : int array;  (* pc owning the slot, for per-block attribution *)
  q_ret : int array;  (* instructions retired when the slot completes *)
  mutable q_head : int;
  mutable q_tail : int;
  mutable q_has_tx : bool;  (* any tx slot in the current queue *)
  mutable local_prefix : int;
      (* local cycles from q_head to the next tx slot / queue end: how
         long this core runs with no bus or plan event *)
  mutable waiting_bus : bool;
  mutable done_cycle : int option;
  mutable instructions : int;
  mutable bus_stall_cycles : int;
  attrib : int array;
  block_attrib : (string * int, int array) Hashtbl.t option;
  mutable cur_block : (string * int) option;
  (* Same-line memo: the cache line of the previous L1I / L1D access.
     The L1s are private and only [append_uop] touches them, so an
     access to the same line as the immediately-preceding one is a
     guaranteed hit that leaves the LRU order unchanged (the line is
     already MRU) — counted via [Cache.Concrete.note_hit] without the
     lookup. *)
  mutable last_i_line : int;
  mutable last_d_line : int;
  l1d_line_size : int;  (* for inline [Config.line_of_addr] arithmetic *)
  mutable halted_sem : bool;  (* batch ran [Halt]; finish on drain *)
  mutable blocks_dispatched : int;
  mutable fallback_plans : int;
}

let bump_idx core i n =
  core.attrib.(i) <- core.attrib.(i) + n;
  match (core.block_attrib, core.cur_block) with
  | Some tbl, Some loc ->
      let arr =
        match Hashtbl.find_opt tbl loc with
        | Some a -> a
        | None ->
            let a = Array.make ncats 0 in
            Hashtbl.add tbl loc a;
            a
      in
      arr.(i) <- arr.(i) + n
  | _ -> ()

let set_loc core pc =
  match core.ci.ci_locs with
  | Some locs -> core.cur_block <- locs.(pc)
  | None -> ()

let enq_local core cat n pc =
  (* A degenerate zero-length unit still costs one cycle, exactly like a
     [Local (_, 0)] head in the reference. *)
  let n = if n <= 0 then 1 else n in
  let t = core.q_tail in
  if t > 0 && core.q_cat.(t - 1) = cat && core.q_loc.(t - 1) = pc then
    (* Adjacent local cycles of the same category for the same pc are
       indistinguishable cycle-by-cycle (same bump, same location, and
       retire tags only ever sit on a micro-op's final slot), so fuse
       them into one slot. *)
    core.q_arg.(t - 1) <- core.q_arg.(t - 1) + n
  else begin
    core.q_cat.(t) <- cat;
    core.q_arg.(t) <- n;
    core.q_loc.(t) <- pc;
    core.q_ret.(t) <- 0;
    core.q_tail <- t + 1
  end

let enq_tx core (tx : tx) pc =
  core.q_has_tx <- true;
  let t = core.q_tail in
  core.q_cat.(t) <- -1;
  core.q_arg.(t) <- tx.tx_latency;
  core.q_loc.(t) <- pc;
  core.q_ret.(t) <- 0;
  let base = t * ncats in
  let v = tx.tx_vec in
  core.q_vec.(base) <- v.Pipeline.Cost.Vec.compute;
  core.q_vec.(base + 1) <- v.Pipeline.Cost.Vec.l1_miss;
  core.q_vec.(base + 2) <- v.Pipeline.Cost.Vec.l2_miss;
  core.q_vec.(base + 3) <- v.Pipeline.Cost.Vec.bus;
  core.q_vec.(base + 4) <- v.Pipeline.Cost.Vec.stall;
  core.q_tail <- t + 1

let recompute_prefix core =
  let p = ref 0 and i = ref core.q_head in
  while !i < core.q_tail && core.q_cat.(!i) >= 0 do
    p := !p + core.q_arg.(!i);
    incr i
  done;
  core.local_prefix <- !p

(* Enqueue the work of one micro-op, in the reference's plan order:
   fetch lookup, fetch/method-cache transaction, execute (compute then
   redirect stall), then the data access.  Cache accesses happen here —
   at plan time — exactly as in [Reference.plan_instruction]. *)
(* The data access (lookup already accounted in the caller's slots on
   the fast path): memoized hit, L1D access, and on a miss or an I/O
   operand a transaction. *)
let append_data cfg bus core (u : uop) =
  match u.u_data with
  | D_none -> ()
  | D_mem { d_space; d_base; d_off } ->
      let ci = core.ci in
      let pc = u.u_pc in
      let idx = ci.ci_exec.Isa.Exec.regs.(d_base) + d_off in
      let addr = Isa.Layout.byte_addr d_space idx in
      let line = addr / core.l1d_line_size in
      if line = core.last_d_line then Cache.Concrete.note_hit ci.ci_l1d
      else begin
        core.last_d_line <- line;
        match Cache.Concrete.access ci.ci_l1d addr with
        | `Hit -> ()
        | `Miss ->
            enq_tx core
              (miss_tx cfg ~l2:ci.ci_l2 ~l2_bypass:ci.ci_l2_bypass
                 (Bus.now bus) addr)
              pc
      end
  | D_io ->
      (* The device's own service time is work, not interference. *)
      let lat = cfg.latencies in
      enq_tx core
        {
          tx_latency = lat.Pipeline.Latencies.io;
          tx_vec =
            Pipeline.Cost.Vec.make Pipeline.Cost.Compute
              lat.Pipeline.Latencies.io;
        }
        u.u_pc

let append_uop cfg bus core (u : uop) =
  let ci = core.ci in
  let pc = u.u_pc in
  let fetch_hit =
    match ci.ci_mcache with
    | Some _ -> false
    | None ->
        let line = u.u_fetch_line in
        if line = core.last_i_line then begin
          Cache.Concrete.note_hit ci.ci_l1i;
          true
        end
        else begin
          core.last_i_line <- line;
          match Cache.Concrete.access ci.ci_l1i u.u_fetch_addr with
          | `Hit -> true
          | `Miss -> false
        end
  in
  if fetch_hit then begin
    (* Fetch hit: the local slots are exactly the static template. *)
    let qc = core.q_cat
    and qa = core.q_arg
    and ql = core.q_loc
    and qr = core.q_ret in
    let t = core.q_tail in
    qc.(t) <- compute_i;
    qa.(t) <- u.u_t1;
    ql.(t) <- pc;
    qr.(t) <- 0;
    let t = t + 1 in
    let t =
      if u.u_t2 > 0 then begin
        qc.(t) <- stall_i;
        qa.(t) <- u.u_t2;
        ql.(t) <- pc;
        qr.(t) <- 0;
        t + 1
      end
      else t
    in
    let t =
      if u.u_t3 > 0 then begin
        qc.(t) <- compute_i;
        qa.(t) <- u.u_t3;
        ql.(t) <- pc;
        qr.(t) <- 0;
        t + 1
      end
      else t
    in
    core.q_tail <- t;
    append_data cfg bus core u
  end
  else begin
    (* Method cache, or the fetch missed (access already performed
       above): the reference's plan order, slot by slot. *)
    let lat = cfg.latencies in
    enq_local core compute_i lat.Pipeline.Latencies.l1_hit pc;
    (match ci.ci_mcache with
    | Some st -> (
        (* Method cache: call and return may need to load the target. *)
        let mc_load target =
          match mcache_miss_tx lat st target with
          | Some tx -> enq_tx core tx pc
          | None -> ()
        in
        match u.u_sem with
        | S_call target -> mc_load target
        | S_ret -> (
            match ci.ci_exec.Isa.Exec.call_stack with
            | r :: _ -> mc_load r
            | [] -> ())
        | _ -> ())
    | None ->
        enq_tx core
          (miss_tx cfg ~l2:ci.ci_l2 ~l2_bypass:ci.ci_l2_bypass (Bus.now bus)
             u.u_fetch_addr)
          pc);
    if u.u_compute > 0 && u.u_stall > 0 then begin
      enq_local core compute_i u.u_compute pc;
      enq_local core stall_i u.u_stall pc
    end
    else if u.u_stall > 0 then enq_local core stall_i u.u_stall pc
    else enq_local core compute_i u.u_compute pc;
    (match u.u_data with
    | D_none -> ()
    | D_mem _ ->
        enq_local core compute_i lat.Pipeline.Latencies.l1_hit pc;
        append_data cfg bus core u
    | D_io -> append_data cfg bus core u)
  end

(* Apply the micro-op's semantics: [Isa.Exec.step_decoded] with the
   decode and label lookups already done. *)
let apply_sem core (u : uop) =
  let st = core.ci.ci_exec in
  let open Isa.Exec in
  st.steps <- st.steps + 1;
  let next = st.pc + 1 in
  match u.u_sem with
  | S_alu (op, rd, rs1, rs2) ->
      set_reg st rd (alu op st.regs.(rs1) st.regs.(rs2));
      st.pc <- next
  | S_alui (op, rd, rs1, imm) ->
      set_reg st rd (alu op st.regs.(rs1) imm);
      st.pc <- next
  | S_load (sp, rd, rb, off) ->
      set_reg st rd (read_mem st sp (st.regs.(rb) + off));
      st.pc <- next
  | S_store (sp, rv, rb, off) ->
      write_mem st sp (st.regs.(rb) + off) st.regs.(rv);
      st.pc <- next
  | S_branch (c, r1, r2, target) ->
      st.pc <- (if cond_holds c st.regs.(r1) st.regs.(r2) then target
                else next)
  | S_jump target -> st.pc <- target
  | S_call target ->
      st.call_stack <- next :: st.call_stack;
      st.pc <- target
  | S_ret -> (
      match st.call_stack with
      | [] -> raise (Fault "ret with empty call stack")
      | r :: rest ->
          st.call_stack <- rest;
          st.pc <- r)
  | S_nop -> st.pc <- next
  | S_halt -> st.pc <- -1

(* Decode-failure parity: a pc outside the program must fail exactly as
   the reference's [Isa.Program.instr] would. *)
let check_pc core pc =
  if pc >= Array.length core.dec.d_uops then
    ignore (Isa.Program.instr core.ci.ci_program pc)

(* Can this micro-op be planned ahead of its reference plan cycle even
   when planning is not clock-independent in general (shared contended
   L2, distributed refresh, method cache)?  Yes iff its plan provably
   touches only core-private state with clock-independent latencies:
   every cache access must be an L1 hit (misses read the clock for
   refresh alignment and mutate the shared L2), which [probe] can
   establish without side effects.  Method-cache loads and I/O are safe:
   their latencies are clock-independent and their state is private —
   the transactions themselves still reach the bus at the exact cycle
   the queue issues them. *)
let probe_safe core (u : uop) =
  let ci = core.ci in
  (match ci.ci_mcache with
  | Some _ -> true
  | None ->
      u.u_fetch_line = core.last_i_line
      || Cache.Concrete.probe ci.ci_l1i u.u_fetch_addr)
  &&
  match u.u_data with
  | D_none | D_io -> true
  | D_mem { d_space; d_base; d_off } ->
      let idx = ci.ci_exec.Isa.Exec.regs.(d_base) + d_off in
      let addr = Isa.Layout.byte_addr d_space idx in
      addr / core.l1d_line_size = core.last_d_line
      || Cache.Concrete.probe ci.ci_l1d addr

(* Dispatch: plan a run of micro-ops up to the end of the basic block
   and pre-apply their semantics, interleaving plan(i)/exec(i) per
   micro-op so plan(i+1) sees the registers exec(i) wrote — the same
   dataflow the reference gets from planning at retire time.

   When [guarded] (platform timing not clock-independent), only the
   first micro-op — whose plan cycle is exactly now — may do anything
   clock- or interference-sensitive; the run extends past it only
   through [probe_safe] micro-ops and stops before the first unsafe one,
   which then gets planned at its own drain cycle by the next refill. *)
(* Micro-ops planned per dispatch group.  A group chains consecutive
   basic blocks (dynamic control flow included: semantics are applied as
   planning goes, so the successor block is always known) as long as
   planning stays legal; stopping mid-block is fine too — the next
   refill resumes at the exact micro-op, at its exact plan cycle. *)
let group_budget = 64

let dispatch_group cfg bus core ~guarded =
  core.blocks_dispatched <- core.blocks_dispatched + 1;
  if guarded then core.fallback_plans <- core.fallback_plans + 1;
  let st = core.ci.ci_exec in
  let rec go first n =
    if n > 0 then begin
      let pc = st.Isa.Exec.pc in
      check_pc core pc;
      let u = core.dec.d_uops.(pc) in
      if first || (not guarded) || probe_safe core u then begin
        append_uop cfg bus core u;
        apply_sem core u;
        core.q_ret.(core.q_tail - 1) <- core.q_ret.(core.q_tail - 1) + 1;
        if st.Isa.Exec.pc < 0 then core.halted_sem <- true
        else go false (n - 1)
      end
    end
  in
  go true group_budget;
  recompute_prefix core

let reset_queue core =
  core.q_head <- 0;
  core.q_tail <- 0;
  core.q_has_tx <- false

let refill cfg bus ~batch core =
  if core.halted_sem then core.done_cycle <- Some (Bus.now bus)
  else begin
    reset_queue core;
    dispatch_group cfg bus core ~guarded:(not batch)
  end

let bump_slot_vec core h =
  let base = h * ncats in
  for j = 0 to ncats - 1 do
    let n = core.q_vec.(base + j) in
    if n <> 0 then bump_idx core j n
  done

(* One simulation cycle for a core — event-for-event the reference's
   [step_core], over the flat queue. *)
let step_core cfg bus ~batch core =
  match core.done_cycle with
  | Some _ -> ()
  | None ->
    if core.waiting_bus && not (Bus.pending bus ~core:core.id) then
      core.waiting_bus <- false;
    if core.waiting_bus then begin
      core.bus_stall_cycles <- core.bus_stall_cycles + 1;
      if not (Bus.serving bus ~core:core.id) then bump_idx core bus_i 1
    end;
    if not core.waiting_bus then begin
      if core.q_head = core.q_tail then refill cfg bus ~batch core;
      match core.done_cycle with
      | Some _ -> ()
      | None ->
        let h = core.q_head in
        let cat = core.q_cat.(h) in
        set_loc core core.q_loc.(h);
        if cat >= 0 then begin
          bump_idx core cat 1;
          let left = core.q_arg.(h) - 1 in
          if left <= 0 then begin
            core.instructions <- core.instructions + core.q_ret.(h);
            core.q_head <- h + 1
          end
          else core.q_arg.(h) <- left;
          core.local_prefix <- core.local_prefix - 1
        end
        else begin
          bump_slot_vec core h;
          Bus.request bus ~core:core.id ~latency:core.q_arg.(h);
          core.waiting_bus <- true;
          core.instructions <- core.instructions + core.q_ret.(h);
          core.q_head <- h + 1;
          recompute_prefix core
        end
    end

(* Size of the largest cycle window in which no event — plan, issue,
   arbitration, service completion — can occur for any core or the bus.
   0 or 1 means "just step normally". *)
let window states bus budget =
  let bus_k =
    match Bus.in_service bus with
    | Some (_, rem) -> if rem < budget then rem else budget
    | None ->
        if Bus.has_pending bus then 0 (* arbitration cycle *) else budget
  in
  let rec scan i k =
    if k = 0 then 0
    else if i >= Array.length states then k
    else
      match states.(i) with
      | None -> scan (i + 1) k
      | Some c -> (
          match c.done_cycle with
          | Some _ -> scan (i + 1) k
          | None ->
          if c.waiting_bus then
            (* A cleared grant means the core acts this cycle. *)
            if Bus.pending bus ~core:c.id then scan (i + 1) k else 0
          else if c.local_prefix < k then scan (i + 1) c.local_prefix
          else scan (i + 1) k)
  in
  scan 0 bus_k

(* Advance one core k cycles worth of eventless work. *)
let bulk_core bus k = function
  | None -> ()
  | Some c -> (
      match c.done_cycle with
      | Some _ -> ()
      | None ->
      if c.waiting_bus then begin
        c.bus_stall_cycles <- c.bus_stall_cycles + k;
        if not (Bus.serving bus ~core:c.id) then bump_idx c bus_i k
      end
      else begin
        let rem = ref k in
        while !rem > 0 do
          let h = c.q_head in
          let len = c.q_arg.(h) in
          let take = if !rem < len then !rem else len in
          set_loc c c.q_loc.(h);
          bump_idx c c.q_cat.(h) take;
          if take = len then begin
            c.instructions <- c.instructions + c.q_ret.(h);
            c.q_head <- h + 1
          end
          else c.q_arg.(h) <- len - take;
          rem := !rem - take
        done;
        c.local_prefix <- c.local_prefix - k
      end)

let run cfg ~cores ?(max_cycles = 10_000_000) () =
  let n = Array.length cores in
  let bus = Bus.create cfg.arbiter in
  let l2_for = make_l2s cfg n in
  let active =
    Array.fold_left
      (fun acc (s : core_setup) ->
        match s.program with None -> acc | Some _ -> acc + 1)
      0 cores
  in
  (* Whole-block dispatch is exact iff planning is clock-independent and
     nothing outside this core can perturb its caches between the
     reference's plan cycles (see the header comment). *)
  let batch =
    (match cfg.refresh with
    | Interconnect.Arbiter.Burst -> true
    | Interconnect.Arbiter.Distributed _ -> false)
    && (match cfg.i_path with
       | Conventional -> true
       | Method_cache _ -> false)
    && (match cfg.l2 with
       | No_l2 | Private_l2 _ -> true
       | Shared_l2 _ -> active <= 1)
  in
  let build () =
    Array.mapi
      (fun i (setup : core_setup) ->
        match init_core cfg l2_for i setup with
        | None -> None
        | Some ci ->
            let dec = decode_cached cfg ci.ci_program in
            (* Worst case: 6 slots per uop (fetch lookup + fetch tx +
               compute + stall + data lookup + data tx) plus the entry
               function load. *)
            let cap = (group_budget * 6) + 4 in
            let core =
              {
                id = i;
                ci;
                dec;
                q_cat = Array.make cap 0;
                q_arg = Array.make cap 0;
                q_vec = Array.make (cap * ncats) 0;
                q_loc = Array.make cap 0;
                q_ret = Array.make cap 0;
                q_head = 0;
                q_tail = 0;
                q_has_tx = false;
                local_prefix = 0;
                waiting_bus = false;
                done_cycle = None;
                instructions = 0;
                bus_stall_cycles = 0;
                attrib = Array.make ncats 0;
                block_attrib =
                  (if ci.ci_attrib_blocks then Some (Hashtbl.create 64)
                   else None);
                cur_block = None;
                last_i_line = min_int;
                last_d_line = min_int;
                l1d_line_size =
                  (Cache.Concrete.config ci.ci_l1d).Cache.Config.line_size;
                halted_sem = false;
                blocks_dispatched = 0;
                fallback_plans = 0;
              }
            in
            let entry = ci.ci_program.Isa.Program.entry in
            check_pc core entry;
            (* The entry function itself must be loaded first (method
               cache only, which implies the guarded path). *)
            (match ci.ci_mcache with
            | Some st -> (
                match mcache_miss_tx cfg.latencies st entry with
                | Some tx -> enq_tx core tx entry
                | None -> ())
            | None -> ());
            dispatch_group cfg bus core ~guarded:(not batch);
            Some core)
      cores
  in
  let obs = Obs.enabled () in
  let states =
    if obs then Obs.span ~cat:"sim" "sim.predecode" build else build ()
  in
  let all_done () =
    Array.for_all
      (function
        | None -> true
        | Some c -> ( match c.done_cycle with Some _ -> true | None -> false))
      states
  in
  let nstates = Array.length states in
  let bulk_cycles = ref 0 in
  (* The single core still running, when there is exactly one — the
     precondition for the turbo block path below. *)
  let sole_runner () =
    let rec go i found =
      if i >= nstates then found
      else
        match states.(i) with
        | None -> go (i + 1) found
        | Some c -> (
            match c.done_cycle with
            | Some _ -> go (i + 1) found
            | None -> ( match found with None -> go (i + 1) (Some c)
                      | Some _ -> None))
    in
    go 0 None
  in
  let rec loop cycles =
    if cycles >= max_cycles || all_done () then ()
    else begin
      (* Turbo path: one core left, at a block boundary, bus empty.  Its
         next block, if it plans no transactions, is a straight run of
         local cycles that no event can interrupt — dispatch it and
         retire the whole queue in one step.  Identical bookkeeping to
         refill-in-[step_core] followed by [window]/[bulk_core]: the
         plan happens at the same [Bus.now], every slot bumps the same
         (category, location) totals, retire tags land at the same
         completion cycles, and the idle bus just advances its clock. *)
      let turbo =
        if not batch then None
        else
          match Bus.in_service bus with
          | Some _ -> None
          | None -> (
              match sole_runner () with
              | Some c
                when (not c.waiting_bus)
                     && c.q_head = c.q_tail
                     && not (Bus.has_pending bus) ->
                  Some c
              | _ -> None)
      in
      match turbo with
      | Some c -> (
          refill cfg bus ~batch:true c;
          match c.done_cycle with
          | Some _ -> ()
          | None ->
              let t = c.local_prefix in
              if (not c.q_has_tx) && t <= max_cycles - cycles then begin
                for h = c.q_head to c.q_tail - 1 do
                  set_loc c c.q_loc.(h);
                  bump_idx c c.q_cat.(h) c.q_arg.(h);
                  c.instructions <- c.instructions + c.q_ret.(h)
                done;
                c.q_head <- c.q_tail;
                c.local_prefix <- 0;
                Bus.skip bus t;
                bulk_cycles := !bulk_cycles + t;
                loop (cycles + t)
              end
              else begin
                (* Queue pre-filled (at the same plan clock a refill in
                   [step_core] would have used); consume it normally. *)
                let k = window states bus (max_cycles - cycles) in
                if k > 1 then begin
                  for i = 0 to nstates - 1 do
                    bulk_core bus k states.(i)
                  done;
                  Bus.skip bus k;
                  bulk_cycles := !bulk_cycles + k;
                  loop (cycles + k)
                end
                else begin
                  step_core cfg bus ~batch c;
                  Bus.step bus;
                  loop (cycles + 1)
                end
              end)
      | None ->
          let k = window states bus (max_cycles - cycles) in
          if k > 1 then begin
            for i = 0 to nstates - 1 do
              bulk_core bus k states.(i)
            done;
            Bus.skip bus k;
            bulk_cycles := !bulk_cycles + k;
            loop (cycles + k)
          end
          else begin
            for i = 0 to nstates - 1 do
              match states.(i) with
              | None -> ()
              | Some c -> step_core cfg bus ~batch c
            done;
            Bus.step bus;
            loop (cycles + 1)
          end
    end
  in
  loop 0;
  if obs then begin
    Array.iter
      (function
        | None -> ()
        | Some c ->
            Obs.add "sim.predecode.uops" (Array.length c.dec.d_uops);
            Obs.add "sim.blocks" c.dec.d_nblocks;
            Obs.add "sim.blocks_dispatched" c.blocks_dispatched;
            Obs.add "sim.fallback_plans" c.fallback_plans)
      states;
    Obs.add "sim.bulk_cycles" !bulk_cycles
  end;
  Array.mapi
    (fun i state ->
      match state with
      | None -> idle_result
      | Some c ->
          result_of ~bus ~core:i ~ci:c.ci ~done_cycle:c.done_cycle
            ~instructions:c.instructions
            ~bus_stall_cycles:c.bus_stall_cycles ~attrib:c.attrib
            ~block_attrib:c.block_attrib)
    states
