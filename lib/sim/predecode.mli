(** Block-predecoded simulator interpreter — the default hot path behind
    {!Machine.run}.

    Decodes each program once into per-block arrays of fused micro-ops
    (resolved operands and control targets, precomputed fetch addresses
    and exec-cost splits), dispatches per basic block where the platform
    timing permits, and advances eventless cycle stretches in bulk.
    Bit-identical to {!Reference} on every halted run — cycles,
    attribution vectors, per-block attribution, bus stalls, cache stats,
    instruction counts and final state; see machine.mli for the one
    caveat on horizon-truncated runs.

    Use {!Machine.run} (optionally with [~interp:`Block]) rather than
    calling this directly. *)

val run :
  Machine_core.config ->
  cores:Machine_core.core_setup array ->
  ?max_cycles:int ->
  unit ->
  Machine_core.core_result array
(** Precondition (checked by {!Machine.run}): the arbiter's core count
    matches [cores]. *)
