(* Shared model between the two simulator interpreters: configuration
   and result types, per-core setup, the method-cache function map, the
   per-block attribution map, and the bus-transaction cost model.  Both
   [Reference] (the verbatim per-instruction stepper, kept as the
   differential oracle) and [Predecode] (the block-predecoded hot path)
   are built on exactly these definitions, so a divergence between them
   can only come from their stepping logic, never from the cost model. *)

type l2_config =
  | No_l2
  | Shared_l2 of Cache.Config.t
  | Private_l2 of Cache.Config.t array

type i_path = Conventional | Method_cache of Cache.Method_cache.config

type config = {
  latencies : Pipeline.Latencies.t;
  l1i : Cache.Config.t;
  l1d : Cache.Config.t;
  l2 : l2_config;
  arbiter : Interconnect.Arbiter.t;
  refresh : Interconnect.Arbiter.refresh_policy;
  i_path : i_path;
}

type core_setup = {
  program : Isa.Program.t option;
  init_regs : (int * int) list;
  init_data : (int * int) list;
  locked_l2_lines : int list;
  warm_i : int list;
  warm_d : int list;
  l2_bypass : int -> bool;
  attrib_blocks : bool;
}

let task program =
  {
    program = Some program;
    init_regs = [];
    init_data = [];
    locked_l2_lines = [];
    warm_i = [];
    warm_d = [];
    l2_bypass = (fun _ -> false);
    attrib_blocks = false;
  }

let idle =
  {
    program = None;
    init_regs = [];
    init_data = [];
    locked_l2_lines = [];
    warm_i = [];
    warm_d = [];
    l2_bypass = (fun _ -> false);
    attrib_blocks = false;
  }

type core_result = {
  cycles : int;
  halted : bool;
  instructions : int;
  l1i_hits : int;
  l1i_misses : int;
  l1d_hits : int;
  l1d_misses : int;
  max_bus_wait : int;
  bus_stall_cycles : int;
  attrib : Pipeline.Cost.Vec.t;
  block_attrib : ((string * int) * Pipeline.Cost.Vec.t) list;
  final_state : Isa.Exec.state option;
}

let idle_result =
  {
    cycles = 0;
    halted = true;
    instructions = 0;
    l1i_hits = 0;
    l1i_misses = 0;
    l1d_hits = 0;
    l1d_misses = 0;
    max_bus_wait = 0;
    bus_stall_cycles = 0;
    attrib = Pipeline.Cost.Vec.zero;
    block_attrib = [];
    final_state = None;
  }

let ncats = List.length Pipeline.Cost.categories

(* A bus transaction: its service latency and the category breakdown of
   that latency ([Vec.total tx_vec = tx_latency]).  The vector is charged
   in full at issue; the remaining serviced stall cycles are then skipped
   by the per-cycle accounting, while arbitration-wait stall cycles are
   charged to [Bus] one by one. *)
type tx = { tx_latency : int; tx_vec : Pipeline.Cost.Vec.t }

type mcache_state = {
  cache : Cache.Method_cache.t;
  mc_config : Cache.Method_cache.config;
  proc_of_instr : int array;  (* -1 = unknown *)
  proc_sizes : int array;
}

(* Function map for the method cache: which procedure an instruction
   belongs to, and each procedure's size in words. *)
let build_mcache mc program =
  let cg = Cfg.Callgraph.build program in
  let procs = Cfg.Callgraph.bottom_up cg in
  let proc_of_instr = Array.make (Isa.Program.length program) (-1) in
  let proc_sizes = Array.make (List.length procs) 0 in
  List.iteri
    (fun idx (_, (g : Cfg.Graph.t)) ->
      let size = ref 0 in
      for id = 0 to Cfg.Graph.num_blocks g - 1 do
        let b = Cfg.Graph.block g id in
        size := !size + Cfg.Block.length b;
        for i = b.Cfg.Block.first to b.Cfg.Block.last do
          if proc_of_instr.(i) < 0 then proc_of_instr.(i) <- idx
        done
      done;
      proc_sizes.(idx) <- !size)
    procs;
  {
    cache = Cache.Method_cache.create mc;
    mc_config = mc;
    proc_of_instr;
    proc_sizes;
  }

(* Instruction -> (procedure name, block id) map for per-block
   attribution; mirrors [build_mcache]'s first-wins convention for code
   shared between procedures. *)
let build_locs program =
  match Cfg.Callgraph.build program with
  | exception _ -> None
  | cg ->
      let locs = Array.make (Isa.Program.length program) None in
      List.iter
        (fun (name, (g : Cfg.Graph.t)) ->
          for id = 0 to Cfg.Graph.num_blocks g - 1 do
            let b = Cfg.Graph.block g id in
            for i = b.Cfg.Block.first to b.Cfg.Block.last do
              if locs.(i) = None then locs.(i) <- Some (name, id)
            done
          done)
        (Cfg.Callgraph.bottom_up cg);
      Some locs

(* Bus transaction for loading the function containing [instr], if it is
   not resident.  Function loads are DRAM traffic: the whole latency is
   attributed to [L2_miss], matching the analysis side's [mc_load_vec]. *)
let mcache_miss_tx lat st instr =
  if instr < 0 || instr >= Array.length st.proc_of_instr then None
  else
    let p = st.proc_of_instr.(instr) in
    if p < 0 then None
    else
      match Cache.Method_cache.access st.cache p with
      | `Hit -> None
      | `Miss ->
          let cost =
            Cache.Method_cache.load_cost st.mc_config
              ~mem_latency:lat.Pipeline.Latencies.mem
              ~size_words:st.proc_sizes.(p)
          in
          Some
            {
              tx_latency = cost;
              tx_vec = Pipeline.Cost.Vec.make Pipeline.Cost.L2_miss cost;
            }

(* Worst-case extra wait if a DRAM access can collide with a refresh. *)
let refresh_extra refresh clock =
  match refresh with
  | Interconnect.Arbiter.Burst -> 0
  | Interconnect.Arbiter.Distributed { interval; duration } ->
      if clock mod interval < duration then duration else 0

(* The bus transaction serving an L1 miss: L2 lookup plus DRAM on an L2
   miss.  The L2 state is updated here (issue time).  Attribution mirrors
   the analysis decomposition: the L2 lookup goes to [L1_miss], the DRAM
   latency to [L2_miss], and refresh collisions — memory-controller
   interference — to [Bus]. *)
let miss_tx cfg ~l2 ~l2_bypass clock addr =
  let lat = cfg.latencies in
  let bypassed =
    match l2 with
    | Some l2 ->
        l2_bypass (Cache.Config.line_of_addr (Cache.Concrete.config l2) addr)
    | None -> false
  in
  match (if bypassed then None else l2) with
  | None ->
      let refresh = refresh_extra cfg.refresh clock in
      {
        tx_latency = lat.Pipeline.Latencies.mem + refresh;
        tx_vec =
          {
            Pipeline.Cost.Vec.zero with
            l2_miss = lat.Pipeline.Latencies.mem;
            bus = refresh;
          };
      }
  | Some l2 -> (
      match Cache.Concrete.access l2 addr with
      | `Hit ->
          {
            tx_latency = lat.Pipeline.Latencies.l2_hit;
            tx_vec =
              Pipeline.Cost.Vec.make Pipeline.Cost.L1_miss
                lat.Pipeline.Latencies.l2_hit;
          }
      | `Miss ->
          let refresh = refresh_extra cfg.refresh clock in
          {
            tx_latency =
              lat.Pipeline.Latencies.l2_hit + lat.Pipeline.Latencies.mem
              + refresh;
            tx_vec =
              {
                Pipeline.Cost.Vec.zero with
                l1_miss = lat.Pipeline.Latencies.l2_hit;
                l2_miss = lat.Pipeline.Latencies.mem;
                bus = refresh;
              };
          })

(* Architectural + platform state of one active core before any
   interpreter-specific stepping machinery is attached. *)
type core_init = {
  ci_program : Isa.Program.t;
  ci_exec : Isa.Exec.state;
  ci_l1i : Cache.Concrete.t;
  ci_l1d : Cache.Concrete.t;
  ci_l2 : Cache.Concrete.t option;
  ci_mcache : mcache_state option;
  ci_locs : (string * int) option array option;
  ci_l2_bypass : int -> bool;
  ci_attrib_blocks : bool;
}

(* Per-core L2 instance selector (shared instance, private slice, or
   none); validates the [Private_l2] slice count. *)
let make_l2s cfg n =
  let l2_shared =
    match cfg.l2 with
    | Shared_l2 c -> Some (Cache.Concrete.create c)
    | No_l2 | Private_l2 _ -> None
  in
  fun i ->
    match cfg.l2 with
    | No_l2 -> None
    | Shared_l2 _ -> l2_shared
    | Private_l2 arr ->
        if Array.length arr <> n then
          invalid_arg "Machine.run: Private_l2 needs one slice per core"
        else Some (Cache.Concrete.create arr.(i))

let init_core cfg l2_for i (setup : core_setup) =
  match setup.program with
  | None -> None
  | Some program ->
      let exec = Isa.Exec.init program in
      List.iter
        (fun (r, v) -> if r <> 0 then exec.Isa.Exec.regs.(r) <- v)
        setup.init_regs;
      List.iter
        (fun (a, v) ->
          if a >= 0 && a < Array.length exec.Isa.Exec.data then
            exec.Isa.Exec.data.(a) <- v)
        setup.init_data;
      let l2 = l2_for i in
      (match l2 with
      | Some l2c ->
          List.iter
            (fun line ->
              Cache.Concrete.lock_line l2c
                (Cache.Config.addr_of_line (Cache.Concrete.config l2c) line))
            setup.locked_l2_lines
      | None -> ());
      let l1i = Cache.Concrete.create cfg.l1i in
      let l1d = Cache.Concrete.create cfg.l1d in
      List.iter (fun a -> ignore (Cache.Concrete.access l1i a)) setup.warm_i;
      List.iter (fun a -> ignore (Cache.Concrete.access l1d a)) setup.warm_d;
      let mcache =
        match cfg.i_path with
        | Conventional -> None
        | Method_cache mc -> Some (build_mcache mc program)
      in
      let locs = if setup.attrib_blocks then build_locs program else None in
      Some
        {
          ci_program = program;
          ci_exec = exec;
          ci_l1i = l1i;
          ci_l1d = l1d;
          ci_l2 = l2;
          ci_mcache = mcache;
          ci_locs = locs;
          ci_l2_bypass = setup.l2_bypass;
          ci_attrib_blocks = setup.attrib_blocks;
        }

(* Assemble the public per-core result from interpreter counters. *)
let result_of ~bus ~core ~(ci : core_init) ~done_cycle ~instructions
    ~bus_stall_cycles ~attrib ~block_attrib =
  let l1i_hits, l1i_misses = Cache.Concrete.stats ci.ci_l1i in
  let l1d_hits, l1d_misses = Cache.Concrete.stats ci.ci_l1d in
  let block_attrib =
    match block_attrib with
    | None -> []
    | Some tbl ->
        Hashtbl.fold
          (fun loc arr acc -> (loc, Pipeline.Cost.Vec.of_array arr) :: acc)
          tbl []
        |> List.sort compare
  in
  {
    cycles = (match done_cycle with Some cy -> cy | None -> Bus.now bus);
    halted = done_cycle <> None;
    instructions;
    l1i_hits;
    l1i_misses;
    l1d_hits;
    l1d_misses;
    max_bus_wait = Bus.max_wait bus ~core;
    bus_stall_cycles;
    attrib = Pipeline.Cost.Vec.of_array attrib;
    block_attrib;
    final_state = Some ci.ci_exec;
  }
