(** The per-instruction reference stepper — the differential oracle the
    block-predecoded interpreter ({!Predecode}) is validated against, in
    the same oracle pattern PR 3 used for the LP solver.

    Semantics are the original [Sim.Machine] cycle loop, verbatim; the
    only changes are allocation/decode hoists that cannot affect any
    counter.  Use {!Machine.run} with [~interp:`Reference] rather than
    calling this directly — the wrapper adds argument validation and the
    [Obs] instrumentation. *)

val run :
  Machine_core.config ->
  cores:Machine_core.core_setup array ->
  ?max_cycles:int ->
  unit ->
  Machine_core.core_result array
(** Precondition (checked by {!Machine.run}): the arbiter's core count
    matches [cores]. *)
