(** Cycle-level multicore simulator.

    Each core executes its task one instruction at a time through the
    architectural model in {!Isa.Exec}, charging the same cost structure
    the static analysis bounds: execution latency, L1 instruction/data
    lookups, and — on L1 misses and I/O — shared-bus transactions into the
    L2 and DRAM.  The bus is the concrete arbiter of {!Bus}; caches are
    the concrete LRU models of {!Cache.Concrete}; caches start cold.

    The simulator exists to *validate* bounds (observed <= WCET) and to
    *measure* interference (the experiments of EXPERIMENTS.md), not to be
    a microarchitecturally faithful pipeline: the per-instruction serial
    model matches the compositional cost model of [Pipeline.Cost] by
    construction.

    Simplification (documented): L2 lookup/fill state updates happen when
    the bus transaction is *issued*, not when it is granted, so concurrent
    fills may be ordered differently than their bus services.  This only
    reorders cache content among co-runners and cannot affect the
    validation direction (each core's own accesses stay ordered).

    Two interpreters implement the same machine: {!Predecode} (block
    pre-decoded micro-ops, the default) and {!Reference} (the original
    per-instruction stepper, kept verbatim as the differential oracle).
    They are bit-identical on every halted run.  On a *horizon-truncated*
    run the block interpreter has pre-applied the semantics and cache
    accesses of micro-ops it already planned (whole block groups under
    batchable configurations — burst refresh, conventional fetch,
    private/uncontended L2 — and provably-hit prefixes elsewhere), so
    the instruction count, cache stats and final state of a *non-halted*
    core can differ from the reference's at the horizon, and a faulting
    instruction can be reached (and raise) a few cycles earlier than the
    reference would reach it; [cycles], [halted], [attrib],
    [block_attrib] and [bus_stall_cycles] are exact in every mode
    regardless. *)

type l2_config =
  | No_l2
  | Shared_l2 of Cache.Config.t
  | Private_l2 of Cache.Config.t array  (** one slice per core *)

(** Instruction path: a conventional L1I (+L2) hierarchy, or a
    Schoeberl-style method cache — fetches always take one cycle and the
    only instruction traffic is whole-function loads at call/return
    (misses occupy the bus for [mem + size * fill_per_word] cycles). *)
type i_path = Conventional | Method_cache of Cache.Method_cache.config

type config = {
  latencies : Pipeline.Latencies.t;
  l1i : Cache.Config.t;  (** ignored when [i_path] is [Method_cache] *)
  l1d : Cache.Config.t;
  l2 : l2_config;
  arbiter : Interconnect.Arbiter.t;
  refresh : Interconnect.Arbiter.refresh_policy;
  i_path : i_path;
}

type core_setup = {
  program : Isa.Program.t option;  (** [None]: the core idles *)
  init_regs : (int * int) list;  (** input injection before start *)
  init_data : (int * int) list;  (** data-memory word initialisation *)
  locked_l2_lines : int list;
      (** lines locked in this core's L2 slice (or the shared L2) before
          the run *)
  warm_i : int list;
      (** byte addresses pre-accessed in the L1 instruction cache: an
          *initial hardware state* perturbation for predictability
          experiments (the analyses assume cold caches; warming explores
          the state-induced variation the Grund et al. quotients measure) *)
  warm_d : int list;  (** same for the L1 data cache *)
  l2_bypass : int -> bool;
      (** L2 lines (in L2 geometry) this core's accesses bypass — the
          compiler-directed single-usage bypass of Hardy et al.; bypassed
          misses go straight to memory and never fill the L2 *)
  attrib_blocks : bool;
      (** also attribute cycles per (procedure, block) — requires a CFG
          reconstruction of the task at setup time, so it is off by
          default; the per-core category totals are always counted *)
}

val task : Isa.Program.t -> core_setup
val idle : core_setup

type core_result = {
  cycles : int;  (** completion time (cycle of halt), or the horizon *)
  halted : bool;
  instructions : int;
  l1i_hits : int;
  l1i_misses : int;
  l1d_hits : int;
  l1d_misses : int;
  max_bus_wait : int;
  bus_stall_cycles : int;
      (** cycles the core spent stalled on bus transactions (waiting plus
          being serviced) — the slack an SMT core could give co-threads *)
  attrib : Pipeline.Cost.Vec.t;
      (** observed attribution: where this core's cycles actually went,
          on the same five categories the analysis decomposes its bound
          over.  Every cycle is charged to exactly one category (local
          work as tagged, bus transactions by their service breakdown,
          arbitration wait to [Bus]), so for a halted core
          [Vec.total attrib = cycles] bit-exactly. *)
  block_attrib : ((string * int) * Pipeline.Cost.Vec.t) list;
      (** observed attribution per (procedure, block), sorted; populated
          only when the core's setup had [attrib_blocks] set.  Cycles of
          a callee's execution are charged to the *callee's* blocks (the
          flat view, matching [Attrib]'s redistribution of the analytic
          bound).  Sums to [attrib] for a halted core. *)
  final_state : Isa.Exec.state option;
}

type interp = [ `Block | `Reference ]
(** Which interpreter steps the machine: the block-predecoded hot path
    (default) or the per-instruction oracle stepper. *)

val run :
  ?interp:interp ->
  config ->
  cores:core_setup array ->
  ?max_cycles:int ->
  unit ->
  core_result array
(** Runs until every core halts or [max_cycles] (default 10_000_000).
    @raise Invalid_argument if the core count does not match the
    arbiter's, or a [Private_l2] array is missing slices. *)

val run_single :
  ?interp:interp ->
  config ->
  Isa.Program.t ->
  ?max_cycles:int ->
  unit ->
  core_result
(** One task on core 0 of a single-core instance of [config] (the
    arbiter is replaced by [Private]). *)
