type req = { latency : int; issued_at : int }

type t = {
  policy : Interconnect.Arbiter.t;
  ncores : int;
  pending : req option array;  (* visible to arbitration *)
  mutable in_service : (int * int) option;  (* core, remaining cycles *)
  mutable token : int;  (* next position in the arbitration round *)
  round : int array;  (* grant order for RR/weighted: a list of core ids *)
  fifo : int Queue.t;  (* arrival order for FCFS *)
  mutable clock : int;
  max_wait : int array;
  total_wait : int array;
  (* Per-cycle stall-cause counters: a pending cycle is either spent
     being serviced (the transaction's own latency) or waiting on the
     arbiter (interference from co-runners). *)
  wait_cycles : int array;
  service_cycles : int array;
}

let create policy =
  let ncores = Interconnect.Arbiter.cores policy in
  {
    policy;
    ncores;
    pending = Array.make ncores None;
    in_service = None;
    token = 0;
    round = Interconnect.Arbiter.round policy;
    fifo = Queue.create ();
    clock = 0;
    max_wait = Array.make ncores 0;
    total_wait = Array.make ncores 0;
    wait_cycles = Array.make ncores 0;
    service_cycles = Array.make ncores 0;
  }

let is_pending t core =
  match t.pending.(core) with Some _ -> true | None -> false

let request t ~core ~latency =
  if latency <= 0 then invalid_arg "Bus.request: latency <= 0";
  if is_pending t core then invalid_arg "Bus.request: outstanding request";
  t.pending.(core) <- Some { latency; issued_at = t.clock };
  Queue.push core t.fifo

let pending t ~core = is_pending t core

let has_pending t =
  let n = Array.length t.pending in
  let rec go i = i < n && (is_pending t i || go (i + 1)) in
  go 0

let in_service t = t.in_service

(* Pick the next core to serve, if any, and advance arbitration state. *)
let arbitrate t =
  let pick_from_round () =
    let n = Array.length t.round in
    let rec go i =
      if i >= n then None
      else
        let pos = (t.token + i) mod n in
        let core = t.round.(pos) in
        if is_pending t core then begin
          t.token <- (pos + 1) mod n;
          Some core
        end
        else go (i + 1)
    in
    if n = 0 then None else go 0
  in
  match t.policy with
  | Interconnect.Arbiter.Private -> (
      match t.pending.(0) with Some _ -> Some 0 | None -> None)
  | Interconnect.Arbiter.Round_robin _ | Interconnect.Arbiter.Weighted _ ->
      pick_from_round ()
  | Interconnect.Arbiter.Fcfs _ ->
      let rec pop () =
        if Queue.is_empty t.fifo then None
        else
          let core = Queue.pop t.fifo in
          if is_pending t core then Some core else pop ()
      in
      pop ()
  | Interconnect.Arbiter.Tdma { cores; slot } ->
      let period = cores * slot in
      let pos = t.clock mod period in
      let owner = pos / slot in
      let slot_remaining = slot - (pos mod slot) in
      (match t.pending.(owner) with
      | Some r when r.latency <= slot_remaining -> Some owner
      | Some _ | None -> None)

let start_service t core =
  match t.pending.(core) with
  | None -> assert false
  | Some r ->
      let wait = t.clock - r.issued_at in
      if wait > t.max_wait.(core) then t.max_wait.(core) <- wait;
      t.total_wait.(core) <- t.total_wait.(core) + wait;
      t.in_service <- Some (core, r.latency)

let step t =
  (match t.in_service with
  | Some _ -> ()
  | None -> (
      match arbitrate t with
      | Some core -> start_service t core
      | None -> ()));
  (let serving = match t.in_service with Some (c, _) -> c | None -> -1 in
   for c = 0 to t.ncores - 1 do
     match t.pending.(c) with
     | None -> ()
     | Some _ ->
         if c = serving then
           t.service_cycles.(c) <- t.service_cycles.(c) + 1
         else t.wait_cycles.(c) <- t.wait_cycles.(c) + 1
   done);
  (match t.in_service with
  | Some (core, remaining) ->
      let remaining = remaining - 1 in
      if remaining = 0 then begin
        t.in_service <- None;
        t.pending.(core) <- None;
      end
      else t.in_service <- Some (core, remaining)
  | None -> ());
  t.clock <- t.clock + 1

(* Advance [k] cycles during which no arbitration decision can occur:
   either a service is in flight with at least [k] cycles remaining, or
   the bus is completely idle (no pending requests).  Equivalent to [k]
   calls to [step] under that precondition, in O(cores). *)
let skip t k =
  if k <= 0 then invalid_arg "Bus.skip: k <= 0";
  (match t.in_service with
  | Some (core, remaining) ->
      if k > remaining then invalid_arg "Bus.skip: past end of service";
      for c = 0 to t.ncores - 1 do
        match t.pending.(c) with
        | None -> ()
        | Some _ ->
            if c = core then
              t.service_cycles.(c) <- t.service_cycles.(c) + k
            else t.wait_cycles.(c) <- t.wait_cycles.(c) + k
      done;
      let remaining = remaining - k in
      if remaining = 0 then begin
        t.in_service <- None;
        t.pending.(core) <- None
      end
      else t.in_service <- Some (core, remaining)
  | None -> if has_pending t then invalid_arg "Bus.skip: pending request");
  t.clock <- t.clock + k

let now t = t.clock
let max_wait t ~core = t.max_wait.(core)
let total_wait t ~core = t.total_wait.(core)
let wait_cycles t ~core = t.wait_cycles.(core)
let service_cycles t ~core = t.service_cycles.(core)

let serving t ~core =
  match t.in_service with Some (c, _) -> c = core | None -> false
