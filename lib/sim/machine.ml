(* Public simulator facade.  The model (types, cost model, per-core
   setup) lives in [Machine_core]; the two interpreters are [Predecode]
   (block-predecoded, the default) and [Reference] (the per-instruction
   oracle stepper).  This module adds argument validation, interpreter
   selection, and the [Obs] instrumentation. *)

include Machine_core

type interp = [ `Block | `Reference ]

let run_uninstrumented ?(interp = `Block) cfg ~cores ?max_cycles () =
  if Interconnect.Arbiter.cores cfg.arbiter <> Array.length cores then
    invalid_arg "Machine.run: core count does not match arbiter";
  match interp with
  | `Block -> Predecode.run cfg ~cores ?max_cycles ()
  | `Reference -> Reference.run cfg ~cores ?max_cycles ()

(* Observability wrapper: a [cat:"sim"] span per machine run plus
   aggregate cycle/instruction/stall counters on the ambient sink.  One
   atomic load when tracing is off. *)
let run ?interp cfg ~cores ?max_cycles () =
  if not (Obs.enabled ()) then
    run_uninstrumented ?interp cfg ~cores ?max_cycles ()
  else begin
    let results =
      Obs.span ~cat:"sim"
        ~args:[ ("cores", Obs.Event.Int (Array.length cores)) ]
        "sim.run"
        (fun () -> run_uninstrumented ?interp cfg ~cores ?max_cycles ())
    in
    Array.iter
      (fun r ->
        Obs.add "sim.cycles" r.cycles;
        Obs.add "sim.instructions" r.instructions;
        Obs.add "sim.bus_stall_cycles" r.bus_stall_cycles;
        List.iter
          (fun (cat, n) ->
            Obs.add ("sim.attrib." ^ Pipeline.Cost.category_name cat) n)
          (Pipeline.Cost.Vec.to_alist r.attrib))
      results;
    results
  end

let run_single ?interp cfg program ?max_cycles () =
  let cfg = { cfg with arbiter = Interconnect.Arbiter.Private } in
  let results = run ?interp cfg ~cores:[| task program |] ?max_cycles () in
  results.(0)
