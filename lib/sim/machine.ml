type l2_config =
  | No_l2
  | Shared_l2 of Cache.Config.t
  | Private_l2 of Cache.Config.t array

type i_path = Conventional | Method_cache of Cache.Method_cache.config

type config = {
  latencies : Pipeline.Latencies.t;
  l1i : Cache.Config.t;
  l1d : Cache.Config.t;
  l2 : l2_config;
  arbiter : Interconnect.Arbiter.t;
  refresh : Interconnect.Arbiter.refresh_policy;
  i_path : i_path;
}

type core_setup = {
  program : Isa.Program.t option;
  init_regs : (int * int) list;
  init_data : (int * int) list;
  locked_l2_lines : int list;
  warm_i : int list;
  warm_d : int list;
  l2_bypass : int -> bool;
  attrib_blocks : bool;
}

let task program =
  {
    program = Some program;
    init_regs = [];
    init_data = [];
    locked_l2_lines = [];
    warm_i = [];
    warm_d = [];
    l2_bypass = (fun _ -> false);
    attrib_blocks = false;
  }

let idle =
  {
    program = None;
    init_regs = [];
    init_data = [];
    locked_l2_lines = [];
    warm_i = [];
    warm_d = [];
    l2_bypass = (fun _ -> false);
    attrib_blocks = false;
  }

type core_result = {
  cycles : int;
  halted : bool;
  instructions : int;
  l1i_hits : int;
  l1i_misses : int;
  l1d_hits : int;
  l1d_misses : int;
  max_bus_wait : int;
  bus_stall_cycles : int;
  attrib : Pipeline.Cost.Vec.t;
  block_attrib : ((string * int) * Pipeline.Cost.Vec.t) list;
  final_state : Isa.Exec.state option;
}

(* Work items of the current instruction, consumed cycle by cycle.  Each
   [Local] cycle is tagged with its attribution category; a bus
   transaction carries the category breakdown of its service latency
   ([Vec.total tx_vec = tx_latency]), charged at issue — the remaining
   serviced stall cycles are then skipped by the per-cycle accounting,
   while arbitration-wait stall cycles are charged to [Bus] one by one. *)
type tx = { tx_latency : int; tx_vec : Pipeline.Cost.Vec.t }

type work = Local of Pipeline.Cost.category * int | Bus_tx of tx

type core_state = {
  id : int;
  program : Isa.Program.t;
  exec : Isa.Exec.state;
  l1i : Cache.Concrete.t;
  l1d : Cache.Concrete.t;
  l2 : Cache.Concrete.t option;
  mutable queue : work list;
  mutable waiting_bus : bool;
  mutable done_cycle : int option;
  mutable instructions : int;
  mutable bus_stall_cycles : int;
  attrib : int array;  (* indexed by Pipeline.Cost.category_index *)
  block_attrib : (string * int, int array) Hashtbl.t option;
  loc_of_instr : (string * int) option array option;
  mutable cur_block : (string * int) option;
  l2_bypass : int -> bool;
  mcache : mcache_state option;
}

and mcache_state = {
  cache : Cache.Method_cache.t;
  mc_config : Cache.Method_cache.config;
  proc_of_instr : int array;  (* -1 = unknown *)
  proc_sizes : int array;
}

(* Function map for the method cache: which procedure an instruction
   belongs to, and each procedure's size in words. *)
let build_mcache mc program =
  let cg = Cfg.Callgraph.build program in
  let procs = Cfg.Callgraph.bottom_up cg in
  let proc_of_instr = Array.make (Isa.Program.length program) (-1) in
  let proc_sizes = Array.make (List.length procs) 0 in
  List.iteri
    (fun idx (_, (g : Cfg.Graph.t)) ->
      let size = ref 0 in
      for id = 0 to Cfg.Graph.num_blocks g - 1 do
        let b = Cfg.Graph.block g id in
        size := !size + Cfg.Block.length b;
        for i = b.Cfg.Block.first to b.Cfg.Block.last do
          if proc_of_instr.(i) < 0 then proc_of_instr.(i) <- idx
        done
      done;
      proc_sizes.(idx) <- !size)
    procs;
  {
    cache = Cache.Method_cache.create mc;
    mc_config = mc;
    proc_of_instr;
    proc_sizes;
  }

(* Instruction -> (procedure name, block id) map for per-block
   attribution; mirrors [build_mcache]'s first-wins convention for code
   shared between procedures. *)
let build_locs program =
  match Cfg.Callgraph.build program with
  | exception _ -> None
  | cg ->
      let locs = Array.make (Isa.Program.length program) None in
      List.iter
        (fun (name, (g : Cfg.Graph.t)) ->
          for id = 0 to Cfg.Graph.num_blocks g - 1 do
            let b = Cfg.Graph.block g id in
            for i = b.Cfg.Block.first to b.Cfg.Block.last do
              if locs.(i) = None then locs.(i) <- Some (name, id)
            done
          done)
        (Cfg.Callgraph.bottom_up cg);
      Some locs

let bump core cat n =
  let i = Pipeline.Cost.category_index cat in
  core.attrib.(i) <- core.attrib.(i) + n;
  match (core.block_attrib, core.cur_block) with
  | Some tbl, Some loc ->
      let arr =
        match Hashtbl.find_opt tbl loc with
        | Some a -> a
        | None ->
            let a = Array.make (List.length Pipeline.Cost.categories) 0 in
            Hashtbl.add tbl loc a;
            a
      in
      arr.(i) <- arr.(i) + n
  | _ -> ()

let bump_vec core v =
  List.iter
    (fun (cat, n) -> if n <> 0 then bump core cat n)
    (Pipeline.Cost.Vec.to_alist v)

(* Bus transaction for loading the function containing [instr], if it is
   not resident.  Function loads are DRAM traffic: the whole latency is
   attributed to [L2_miss], matching the analysis side's [mc_load_vec]. *)
let mcache_miss_tx lat st instr =
  if instr < 0 || instr >= Array.length st.proc_of_instr then []
  else
    let p = st.proc_of_instr.(instr) in
    if p < 0 then []
    else
      match Cache.Method_cache.access st.cache p with
      | `Hit -> []
      | `Miss ->
          let cost =
            Cache.Method_cache.load_cost st.mc_config
              ~mem_latency:lat.Pipeline.Latencies.mem
              ~size_words:st.proc_sizes.(p)
          in
          [
            Bus_tx
              {
                tx_latency = cost;
                tx_vec = Pipeline.Cost.Vec.make Pipeline.Cost.L2_miss cost;
              };
          ]

(* Worst-case extra wait if a DRAM access can collide with a refresh. *)
let refresh_extra refresh clock =
  match refresh with
  | Interconnect.Arbiter.Burst -> 0
  | Interconnect.Arbiter.Distributed { interval; duration } ->
      if clock mod interval < duration then duration else 0

(* The bus transaction serving an L1 miss: L2 lookup plus DRAM on an L2
   miss.  The L2 state is updated here (issue time).  Attribution mirrors
   the analysis decomposition: the L2 lookup goes to [L1_miss], the DRAM
   latency to [L2_miss], and refresh collisions — memory-controller
   interference — to [Bus]. *)
let miss_tx cfg core clock addr =
  let lat = cfg.latencies in
  let bypassed =
    match core.l2 with
    | Some l2 ->
        core.l2_bypass (Cache.Config.line_of_addr (Cache.Concrete.config l2) addr)
    | None -> false
  in
  match (if bypassed then None else core.l2) with
  | None ->
      let refresh = refresh_extra cfg.refresh clock in
      {
        tx_latency = lat.Pipeline.Latencies.mem + refresh;
        tx_vec =
          {
            Pipeline.Cost.Vec.zero with
            l2_miss = lat.Pipeline.Latencies.mem;
            bus = refresh;
          };
      }
  | Some l2 -> (
      match Cache.Concrete.access l2 addr with
      | `Hit ->
          {
            tx_latency = lat.Pipeline.Latencies.l2_hit;
            tx_vec =
              Pipeline.Cost.Vec.make Pipeline.Cost.L1_miss
                lat.Pipeline.Latencies.l2_hit;
          }
      | `Miss ->
          let refresh = refresh_extra cfg.refresh clock in
          {
            tx_latency =
              lat.Pipeline.Latencies.l2_hit + lat.Pipeline.Latencies.mem
              + refresh;
            tx_vec =
              {
                Pipeline.Cost.Vec.zero with
                l1_miss = lat.Pipeline.Latencies.l2_hit;
                l2_miss = lat.Pipeline.Latencies.mem;
                bus = refresh;
              };
          })

(* Build the work list for the instruction at the current pc. *)
let plan_instruction cfg bus core =
  let lat = cfg.latencies in
  let pc = core.exec.Isa.Exec.pc in
  let ins = Isa.Program.instr core.program pc in
  let clock = Bus.now bus in
  (match core.loc_of_instr with
  | Some locs -> core.cur_block <- locs.(pc)
  | None -> ());
  let fetch_addr = Isa.Program.addr_of_index core.program pc in
  let l1_lookup = Local (Pipeline.Cost.Compute, lat.Pipeline.Latencies.l1_hit) in
  let fetch =
    match core.mcache with
    | Some _ -> [ l1_lookup ]
    | None -> (
        match Cache.Concrete.access core.l1i fetch_addr with
        | `Hit -> [ l1_lookup ]
        | `Miss -> [ l1_lookup; Bus_tx (miss_tx cfg core clock fetch_addr) ])
  in
  (* Method cache: call and return may need to load the target function. *)
  let mc_control =
    match core.mcache with
    | None -> []
    | Some st -> (
        match ins with
        | Isa.Instr.Call l ->
            mcache_miss_tx lat st (Isa.Program.label_index core.program l)
        | Isa.Instr.Ret -> (
            match core.exec.Isa.Exec.call_stack with
            | r :: _ -> mcache_miss_tx lat st r
            | [] -> [])
        | _ -> [])
  in
  let exec =
    (* Split compute from the redirect penalty, preserving the total
       cycle count (a [Local (_, 0)] head would cost a spurious cycle). *)
    let stall = Pipeline.Latencies.exec_stall lat ins in
    let compute = Pipeline.Latencies.exec_cost lat ins - stall in
    if compute > 0 && stall > 0 then
      [
        Local (Pipeline.Cost.Compute, compute);
        Local (Pipeline.Cost.Stall, stall);
      ]
    else if stall > 0 then [ Local (Pipeline.Cost.Stall, stall) ]
    else [ Local (Pipeline.Cost.Compute, compute) ]
  in
  let data =
    match ins with
    | Isa.Instr.Load (sp, _, rb, off) | Isa.Instr.Store (sp, _, rb, off) ->
        let idx = core.exec.Isa.Exec.regs.(rb) + off in
        let addr = Isa.Layout.byte_addr sp idx in
        if Isa.Layout.is_cacheable sp then
          match Cache.Concrete.access core.l1d addr with
          | `Hit -> [ l1_lookup ]
          | `Miss -> [ l1_lookup; Bus_tx (miss_tx cfg core clock addr) ]
        else
          (* The device's own service time is work, not interference. *)
          [
            Bus_tx
              {
                tx_latency = lat.Pipeline.Latencies.io;
                tx_vec =
                  Pipeline.Cost.Vec.make Pipeline.Cost.Compute
                    lat.Pipeline.Latencies.io;
              };
          ]
    | Isa.Instr.Alu _ | Isa.Instr.Alui _ | Isa.Instr.Branch _
    | Isa.Instr.Jump _ | Isa.Instr.Call _ | Isa.Instr.Ret | Isa.Instr.Nop
    | Isa.Instr.Halt ->
        []
  in
  core.queue <- fetch @ mc_control @ exec @ data

(* Retire the instruction whose work just drained and plan the next; the
   retire itself costs no cycles (its cost is in the consumed work). *)
let retire_and_plan cfg bus core =
  core.instructions <- core.instructions + 1;
  match Isa.Exec.step core.program core.exec with
  | Some _ when not (Isa.Exec.halted core.exec) ->
      plan_instruction cfg bus core
  | Some _ | None -> core.done_cycle <- Some (Bus.now bus)

(* One simulation cycle for a core: either stall on the bus or consume
   exactly one unit of work. *)
let step_core cfg bus core =
  if core.done_cycle = None then begin
    if core.waiting_bus && not (Bus.pending bus ~core:core.id) then
      core.waiting_bus <- false;
    if core.waiting_bus then begin
      core.bus_stall_cycles <- core.bus_stall_cycles + 1;
      (* Serviced stall cycles were already charged at issue via the
         transaction's breakdown; the rest is arbitration wait. *)
      if not (Bus.serving bus ~core:core.id) then
        bump core Pipeline.Cost.Bus 1
    end;
    if not core.waiting_bus then begin
      if core.queue = [] then retire_and_plan cfg bus core;
      if core.done_cycle = None then
        match core.queue with
        | Local (cat, n) :: rest ->
            bump core cat 1;
            if n <= 1 then core.queue <- rest
            else core.queue <- Local (cat, n - 1) :: rest
        | Bus_tx tx :: rest ->
            (* Charge the whole service latency now (this issue cycle
               plus the latency-minus-one serviced stall cycles). *)
            bump_vec core tx.tx_vec;
            Bus.request bus ~core:core.id ~latency:tx.tx_latency;
            core.waiting_bus <- true;
            core.queue <- rest
        | [] -> assert false (* plan always yields at least the fetch *)
    end
  end

let run_uninstrumented cfg ~cores ?(max_cycles = 10_000_000) () =
  let n = Array.length cores in
  if Interconnect.Arbiter.cores cfg.arbiter <> n then
    invalid_arg "Machine.run: core count does not match arbiter";
  let bus = Bus.create cfg.arbiter in
  let l2_shared =
    match cfg.l2 with
    | Shared_l2 c -> Some (Cache.Concrete.create c)
    | No_l2 | Private_l2 _ -> None
  in
  let l2_for i =
    match cfg.l2 with
    | No_l2 -> None
    | Shared_l2 _ -> l2_shared
    | Private_l2 arr ->
        if Array.length arr <> n then
          invalid_arg "Machine.run: Private_l2 needs one slice per core"
        else Some (Cache.Concrete.create arr.(i))
  in
  let states =
    Array.mapi
      (fun i (setup : core_setup) ->
        match setup.program with
        | None -> None
        | Some program ->
            let exec = Isa.Exec.init program in
            List.iter
              (fun (r, v) -> if r <> 0 then exec.Isa.Exec.regs.(r) <- v)
              setup.init_regs;
            List.iter
              (fun (a, v) ->
                if a >= 0 && a < Array.length exec.Isa.Exec.data then
                  exec.Isa.Exec.data.(a) <- v)
              setup.init_data;
            let l2 = l2_for i in
            (match l2 with
            | Some l2c ->
                List.iter
                  (fun line ->
                    Cache.Concrete.lock_line l2c
                      (Cache.Config.addr_of_line (Cache.Concrete.config l2c)
                         line))
                  setup.locked_l2_lines
            | None -> ());
            let l1i = Cache.Concrete.create cfg.l1i in
            let l1d = Cache.Concrete.create cfg.l1d in
            List.iter (fun a -> ignore (Cache.Concrete.access l1i a)) setup.warm_i;
            List.iter (fun a -> ignore (Cache.Concrete.access l1d a)) setup.warm_d;
            let mcache =
              match cfg.i_path with
              | Conventional -> None
              | Method_cache mc -> Some (build_mcache mc program)
            in
            let loc_of_instr =
              if setup.attrib_blocks then build_locs program else None
            in
            let core =
              {
                id = i;
                program;
                exec;
                l1i;
                l1d;
                l2;
                queue = [];
                waiting_bus = false;
                done_cycle = None;
                instructions = 0;
                bus_stall_cycles = 0;
                attrib =
                  Array.make (List.length Pipeline.Cost.categories) 0;
                block_attrib =
                  (if setup.attrib_blocks then Some (Hashtbl.create 64)
                   else None);
                loc_of_instr;
                cur_block = None;
                l2_bypass = setup.l2_bypass;
                mcache;
              }
            in
            plan_instruction cfg bus core;
            (* The entry function itself must be loaded first. *)
            (match core.mcache with
            | Some st ->
                core.queue <-
                  mcache_miss_tx cfg.latencies st program.Isa.Program.entry
                  @ core.queue
            | None -> ());
            Some core)
      cores
  in
  let all_done () =
    Array.for_all
      (function None -> true | Some c -> c.done_cycle <> None)
      states
  in
  let rec loop cycles =
    if cycles >= max_cycles || all_done () then ()
    else begin
      Array.iter
        (function None -> () | Some c -> step_core cfg bus c)
        states;
      Bus.step bus;
      loop (cycles + 1)
    end
  in
  loop 0;
  Array.mapi
    (fun i state ->
      match state with
      | None ->
          {
            cycles = 0;
            halted = true;
            instructions = 0;
            l1i_hits = 0;
            l1i_misses = 0;
            l1d_hits = 0;
            l1d_misses = 0;
            max_bus_wait = 0;
            bus_stall_cycles = 0;
            attrib = Pipeline.Cost.Vec.zero;
            block_attrib = [];
            final_state = None;
          }
      | Some c ->
          let l1i_hits, l1i_misses = Cache.Concrete.stats c.l1i in
          let l1d_hits, l1d_misses = Cache.Concrete.stats c.l1d in
          let block_attrib =
            match c.block_attrib with
            | None -> []
            | Some tbl ->
                Hashtbl.fold
                  (fun loc arr acc ->
                    (loc, Pipeline.Cost.Vec.of_array arr) :: acc)
                  tbl []
                |> List.sort compare
          in
          {
            cycles =
              (match c.done_cycle with
              | Some cy -> cy
              | None -> Bus.now bus);
            halted = c.done_cycle <> None;
            instructions = c.instructions;
            l1i_hits;
            l1i_misses;
            l1d_hits;
            l1d_misses;
            max_bus_wait = Bus.max_wait bus ~core:i;
            bus_stall_cycles = c.bus_stall_cycles;
            attrib = Pipeline.Cost.Vec.of_array c.attrib;
            block_attrib;
            final_state = Some c.exec;
          })
    states

(* Observability wrapper: a [cat:"sim"] span per machine run plus
   aggregate cycle/instruction/stall counters on the ambient sink.  One
   atomic load when tracing is off. *)
let run cfg ~cores ?max_cycles () =
  if not (Obs.enabled ()) then run_uninstrumented cfg ~cores ?max_cycles ()
  else begin
    let results =
      Obs.span ~cat:"sim"
        ~args:[ ("cores", Obs.Event.Int (Array.length cores)) ]
        "sim.run"
        (fun () -> run_uninstrumented cfg ~cores ?max_cycles ())
    in
    Array.iter
      (fun r ->
        Obs.add "sim.cycles" r.cycles;
        Obs.add "sim.instructions" r.instructions;
        Obs.add "sim.bus_stall_cycles" r.bus_stall_cycles;
        List.iter
          (fun (cat, n) ->
            Obs.add ("sim.attrib." ^ Pipeline.Cost.category_name cat) n)
          (Pipeline.Cost.Vec.to_alist r.attrib))
      results;
    results
  end

let run_single cfg program ?max_cycles () =
  let cfg = { cfg with arbiter = Interconnect.Arbiter.Private } in
  let results = run cfg ~cores:[| task program |] ?max_cycles () in
  results.(0)
