(* Round-based dirty-set fixpoint scheduling over a CFG.

   The classic chaotic-iteration sweep re-examines every block every
   round: it recomputes the block's input (a join over predecessor outs)
   and compares it against the stored one, even when no predecessor
   changed — on converging analyses most of those joins are pure waste.
   This engine keeps the sweep's reverse-postorder round structure but
   only examines *dirty* blocks: a block becomes dirty exactly when a
   predecessor's out-state changed after the block's last examination.

   Rounds mirror sweeps bit-for-bit: within a round, dirty blocks are
   processed in RPO order; when a block's out changes, successors later
   in RPO are marked dirty for the *current* round (a sweep would reach
   them afterwards with the new out in place) and successors at or before
   the current position for the *next* round (a sweep would only see the
   change on its next pass).  A skipped block's recomputed input would
   have compared equal, so the stored in/out sequences — and therefore
   every analysis result — are identical to the sweep's.  The [`Sweep]
   strategy forces the classic behavior for A/B measurement. *)

type strategy = [ `Worklist | `Sweep ]

let strategy_key : strategy ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref `Worklist)

let with_strategy s f =
  let r = Domain.DLS.get strategy_key in
  let old = !r in
  r := s;
  Fun.protect ~finally:(fun () -> r := old) f

(* Per-domain monotone counters, same telemetry contract as
   [Cache.Analysis.fixpoint_iterations]: read before and after a phase
   and charge the difference. *)
let pops_key = Domain.DLS.new_key (fun () -> ref 0)
let pops () = !(Domain.DLS.get pops_key)
let transfers_key = Domain.DLS.new_key (fun () -> ref 0)
let transfers () = !(Domain.DLS.get transfers_key)
let count_transfer () = incr (Domain.DLS.get transfers_key)

let run_uninstrumented g ?(on_round = fun () -> ()) ~process () =
  let n = Cfg.Graph.num_blocks g in
  let rpo = Cfg.Graph.reverse_postorder g in
  let pos = Array.make n 0 in
  List.iteri (fun i id -> pos.(id) <- i) rpo;
  let sweep = !(Domain.DLS.get strategy_key) = `Sweep in
  let dirty_now = Array.make n false in
  let dirty_next = Array.make n false in
  List.iter (fun id -> dirty_now.(id) <- true) rpo;
  let pop_counter = Domain.DLS.get pops_key in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    on_round ();
    let changed = ref false in
    let pending = ref false in
    List.iter
      (fun id ->
        if sweep || dirty_now.(id) then begin
          dirty_now.(id) <- false;
          incr pop_counter;
          match process ~round:!rounds id with
          | `Unchanged -> ()
          | `In_changed -> changed := true
          | `Out_changed ->
              changed := true;
              List.iter
                (fun (e : Cfg.Graph.edge) ->
                  if pos.(e.dst) > pos.(id) then dirty_now.(e.dst) <- true
                  else begin
                    dirty_next.(e.dst) <- true;
                    pending := true
                  end)
                (Cfg.Graph.succs g id)
        end)
      rpo;
    if sweep then continue_ := !changed
    else begin
      continue_ := !pending;
      if !pending then
        for i = 0 to n - 1 do
          dirty_now.(i) <- dirty_next.(i);
          dirty_next.(i) <- false
        done
    end
  done;
  !rounds

(* Observability wrapper: a [cat:"fixpoint"] span per fixpoint run
   (named by the analysis that asked for it) plus pops/transfers
   counters and a rounds histogram on the ambient sink.  One atomic
   load when tracing is off. *)
let run g ?(name = "fixpoint") ?on_round ~process () =
  if not (Obs.enabled ()) then run_uninstrumented g ?on_round ~process ()
  else begin
    let pop0 = pops () and tr0 = transfers () in
    let rounds =
      Obs.span ~cat:"fixpoint"
        ~args:[ ("blocks", Obs.Event.Int (Cfg.Graph.num_blocks g)) ]
        name
        (fun () -> run_uninstrumented g ?on_round ~process ())
    in
    Obs.add "dataflow.worklist.pops" (pops () - pop0);
    Obs.add "dataflow.worklist.transfers" (transfers () - tr0);
    Obs.observe "dataflow.worklist.rounds_per_fixpoint" rounds;
    rounds
  end

(* The common join/equal/transfer instantiation shared by the four cache
   fixpoints: ['a option] lattice with [None] as bottom, predecessor outs
   joined in edge-list order, the entry fact joined in front of the entry
   block's input. *)
let solve g ?name ~entry_fact ~join ~equal ~transfer ?(on_round = fun () -> ())
    () =
  let n = Cfg.Graph.num_blocks g in
  let ins = Array.make n None in
  let outs = Array.make n None in
  let process ~round:_ id =
    let input =
      let from_preds =
        List.fold_left
          (fun acc (e : Cfg.Graph.edge) ->
            match (acc, outs.(e.src)) with
            | None, x -> x
            | x, None -> x
            | Some a, Some b -> Some (join a b))
          None (Cfg.Graph.preds g id)
      in
      if id = g.Cfg.Graph.entry then
        match from_preds with
        | None -> Some entry_fact
        | Some x -> Some (join entry_fact x)
      else from_preds
    in
    match input with
    | None -> `Unchanged
    | Some input ->
        let stale =
          match ins.(id) with
          | None -> true
          | Some old -> not (equal old input)
        in
        if not stale then `Unchanged
        else begin
          ins.(id) <- Some input;
          count_transfer ();
          let out = transfer id input in
          let out_changed =
            match outs.(id) with
            | None -> true
            | Some old -> not (equal old out)
          in
          outs.(id) <- Some out;
          if out_changed then `Out_changed else `In_changed
        end
  in
  let (_ : int) = run g ?name ~on_round ~process () in
  (ins, outs)
