module Key = struct
  type t = string * string

  let compare = compare
end

module KeyMap = Map.Make (Key)

type t = {
  bounds : int KeyMap.t;
  infeasible : (string * string) list KeyMap.t;
      (* keyed by (proc, ""), value = label pairs *)
}

let empty = { bounds = KeyMap.empty; infeasible = KeyMap.empty }

let with_loop_bound t ~proc ~header_label n =
  if n < 0 then invalid_arg "Annot.with_loop_bound: negative bound"
  else { t with bounds = KeyMap.add (proc, header_label) n t.bounds }

let loop_bound t ~proc ~header_label =
  KeyMap.find_opt (proc, header_label) t.bounds

let infeasible_pair t ~proc l1 l2 =
  let key = (proc, "") in
  let existing =
    match KeyMap.find_opt key t.infeasible with Some l -> l | None -> []
  in
  { t with infeasible = KeyMap.add key ((l1, l2) :: existing) t.infeasible }

let loop_bounds t =
  KeyMap.fold
    (fun (proc, header_label) n acc -> (proc, header_label, n) :: acc)
    t.bounds []
  |> List.rev

let infeasible_pairs t ~proc =
  match KeyMap.find_opt (proc, "") t.infeasible with
  | Some l -> List.rev l
  | None -> []

(* Canonical rendering for memoization keys: maps iterate in key order,
   so equal annotation sets render identically however they were built. *)
let fingerprint t =
  let b = Buffer.create 64 in
  KeyMap.iter
    (fun (proc, header) n ->
      Buffer.add_string b
        (Printf.sprintf "b/%d:%s/%d:%s=%d;" (String.length proc) proc
           (String.length header) header n))
    t.bounds;
  KeyMap.iter
    (fun (proc, _) pairs ->
      Buffer.add_string b (Printf.sprintf "x/%d:%s=" (String.length proc) proc);
      List.iter
        (fun (l1, l2) ->
          Buffer.add_string b
            (Printf.sprintf "%d:%s,%d:%s;" (String.length l1) l1
               (String.length l2) l2))
        (List.rev pairs))
    t.infeasible;
  Buffer.contents b
