type astate = Interval.t array

type result = {
  graph : Cfg.Graph.t;
  ins : astate array;
  outs : astate array;
  call_clobbers : string -> Isa.Instr.reg list;
}

let num_regs = Isa.Instr.num_regs

let bottom_state () = Array.make num_regs Interval.bottom

let top_state () =
  let s = Array.make num_regs Interval.top in
  s.(0) <- Interval.const 0;
  s

let is_bottom_state s = Array.exists Interval.is_bottom s

let join_state a b =
  if is_bottom_state a then Array.copy b
  else if is_bottom_state b then Array.copy a
  else Array.init num_regs (fun i -> Interval.join a.(i) b.(i))

let widen_state old next =
  Array.init num_regs (fun i -> Interval.widen old.(i) next.(i))

let equal_state a b =
  let rec go i =
    i >= num_regs || (Interval.equal a.(i) b.(i) && go (i + 1))
  in
  go 0

let set st r v =
  let st = Array.copy st in
  if r <> 0 then st.(r) <- v;
  st

let alu_interval op a b =
  match (op : Isa.Instr.alu_op) with
  | Isa.Instr.Add -> Interval.add a b
  | Isa.Instr.Sub -> Interval.sub a b
  | Isa.Instr.Mul -> Interval.mul a b
  | Isa.Instr.Div -> Interval.div a b
  | Isa.Instr.Rem -> Interval.rem a b
  | Isa.Instr.And -> Interval.logical_and a b
  | Isa.Instr.Or -> Interval.logical_or a b
  | Isa.Instr.Xor -> Interval.logical_xor a b
  | Isa.Instr.Sll -> Interval.shift_left a b
  | Isa.Instr.Srl -> Interval.shift_right_logical a b
  | Isa.Instr.Slt -> Interval.slt a b

let transfer_instr_with ~call_clobbers ins st =
  if is_bottom_state st then st
  else
    match (ins : Isa.Instr.t) with
    | Isa.Instr.Alu (op, rd, rs1, rs2) ->
        set st rd (alu_interval op st.(rs1) st.(rs2))
    | Isa.Instr.Alui (op, rd, rs1, imm) ->
        set st rd (alu_interval op st.(rs1) (Interval.const imm))
    | Isa.Instr.Load (_, rd, _, _) -> set st rd Interval.top
    | Isa.Instr.Store _ | Isa.Instr.Branch _ | Isa.Instr.Jump _
    | Isa.Instr.Ret | Isa.Instr.Nop | Isa.Instr.Halt ->
        st
    | Isa.Instr.Call callee ->
        (* Forget only what the callee (transitively) may write. *)
        List.fold_left
          (fun st r -> set st r Interval.top)
          (Array.copy st) (call_clobbers callee)

let transfer_instr ins st =
  transfer_instr_with ~call_clobbers:(fun _ -> Clobbers.all_registers) ins st

let transfer_block ~call_clobbers g id st =
  let b = Cfg.Graph.block g id in
  List.fold_left
    (fun st i ->
      transfer_instr_with ~call_clobbers
        (Isa.Program.instr g.Cfg.Graph.program i)
        st)
    st
    (Cfg.Block.instr_indices b)

(* Refine [st] along edge [e] using the branch terminating [e.src]. *)
let refine_along g (e : Cfg.Graph.edge) st =
  if is_bottom_state st then st
  else
    let b = Cfg.Graph.block g e.src in
    match Cfg.Block.terminator g.Cfg.Graph.program b with
    | Isa.Instr.Branch (c, r1, r2, _) ->
        let taken = e.kind = Cfg.Graph.Taken in
        let a = st.(r1) and bv = st.(r2) in
        let a', b' =
          match (c, taken) with
          | Isa.Instr.Eq, true | Isa.Instr.Ne, false ->
              Interval.refine_eq a bv
          | Isa.Instr.Ne, true | Isa.Instr.Eq, false ->
              Interval.refine_ne a bv
          | Isa.Instr.Lt, true | Isa.Instr.Ge, false ->
              Interval.refine_lt a bv
          | Isa.Instr.Ge, true | Isa.Instr.Lt, false ->
              Interval.refine_ge a bv
        in
        let st = set st r1 a' in
        set st r2 b'
    | Isa.Instr.Alu _ | Isa.Instr.Alui _ | Isa.Instr.Load _
    | Isa.Instr.Store _ | Isa.Instr.Jump _ | Isa.Instr.Call _
    | Isa.Instr.Ret | Isa.Instr.Nop | Isa.Instr.Halt ->
        st

let analyze ?(widen_after = 3)
    ?(call_clobbers = fun _ -> Clobbers.all_registers) g =
  let n = Cfg.Graph.num_blocks g in
  let ins = Array.init n (fun _ -> bottom_state ()) in
  let outs = Array.init n (fun _ -> bottom_state ()) in
  ins.(g.Cfg.Graph.entry) <- top_state ();
  let rpo = Cfg.Graph.reverse_postorder g in
  let compute_in id =
    if id = g.Cfg.Graph.entry then top_state ()
    else
      List.fold_left
        (fun acc (e : Cfg.Graph.edge) ->
          join_state acc (refine_along g e outs.(e.src)))
        (bottom_state ())
        (Cfg.Graph.preds g id)
  in
  (* The widening clock is keyed on the round number: the classic sweep
     incremented every block's visit count once per sweep, so its
     per-block [visits > widen_after] test was really a sweep-number
     test, and [Worklist.run] guarantees rounds coincide with sweeps. *)
  let retransfer id input =
    Worklist.count_transfer ();
    let out = transfer_block ~call_clobbers g id input in
    let out_changed = not (equal_state out outs.(id)) in
    outs.(id) <- out;
    if out_changed then `Out_changed else `In_changed
  in
  let (_ : int) =
    Worklist.run g ~name:"value-analysis"
      ~process:(fun ~round id ->
        let input = compute_in id in
        let input =
          if round - 1 > widen_after then widen_state ins.(id) input
          else input
        in
        if not (equal_state input ins.(id)) then begin
          ins.(id) <- input;
          retransfer id input
        end
        else if is_bottom_state outs.(id) && not (is_bottom_state input)
        then retransfer id input
        else `Unchanged)
      ()
  in
  (* One narrowing sweep recovers precision lost to widening where the
     refined inputs are strictly smaller. *)
  List.iter
    (fun id ->
      let input = compute_in id in
      let narrowed =
        Array.init num_regs (fun i -> Interval.meet ins.(id).(i) input.(i))
      in
      ins.(id) <- narrowed;
      outs.(id) <- transfer_block ~call_clobbers g id narrowed)
    rpo;
  { graph = g; ins; outs; call_clobbers }

let block_in r id = r.ins.(id)
let block_out r id = r.outs.(id)

let state_before_instr r g i =
  match Cfg.Graph.block_of_instr g i with
  | None -> None
  | Some id ->
      let b = Cfg.Graph.block g id in
      let rec replay st j =
        if j >= i then st
        else
          replay
            (transfer_instr_with ~call_clobbers:r.call_clobbers
               (Isa.Program.instr g.Cfg.Graph.program j)
               st)
            (j + 1)
      in
      Some (replay r.ins.(id) b.Cfg.Block.first)

let reg_interval st r = st.(r)

let edge_state r g e = refine_along g e r.outs.(e.Cfg.Graph.src)

let pp_astate ppf st =
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i v ->
      if not (Interval.equal v Interval.top) && i > 0 then
        Format.fprintf ppf "r%d=%a " i Interval.pp v)
    st;
  Format.fprintf ppf "@]"
