(** Flow-fact annotations.

    When automatic loop-bound inference fails (input-data dependent loops,
    Section 3.2 "tier-one challenges" of Gebhard et al., referenced by the
    survey), the user supplies manual bounds keyed by procedure name and
    the assembly label of the loop header — the binary-level analogue of
    source-level annotations in industrial tools. *)

type t

val empty : t

val with_loop_bound : t -> proc:string -> header_label:string -> int -> t
(** [int] is the maximum number of back-edge traversals per loop entry.
    @raise Invalid_argument if negative. *)

val loop_bound : t -> proc:string -> header_label:string -> int option

val loop_bounds : t -> (string * string * int) list
(** All bounds as [(proc, header_label, bound)], in canonical (key)
    order — the enumeration the serve protocol ships inline so a client
    can send a generated program together with its flow facts. *)

val infeasible_pair : t -> proc:string -> string -> string -> t
(** Declares that the blocks starting at the two labels are mutually
    exclusive within any single execution (operating-mode style exclusion);
    consumed by the IPET builder as [x_a + x_b <= max(count)] constraints. *)

val infeasible_pairs : t -> proc:string -> (string * string) list

val fingerprint : t -> string
(** Canonical rendering of the whole annotation set (injective up to
    annotation equality), for memoization keys: structurally equal
    annotations always render to the same string. *)
