(** Round-based dirty-set fixpoint scheduling over a CFG.

    A drop-in replacement for the repeat-until-stable reverse-postorder
    sweep used by the abstract-interpretation fixpoints: rounds are
    processed in RPO order like sweeps, but only blocks whose
    predecessors' out-states changed since their last examination are
    re-examined.  The stored in/out sequences are bit-identical to the
    sweep's — a skipped block's recomputed input would have compared
    equal — so analysis results cannot differ; only the amount of join,
    comparison and transfer work does. *)

type strategy = [ `Worklist | `Sweep ]

val with_strategy : strategy -> (unit -> 'a) -> 'a
(** Run a thunk under a scheduling strategy (per-domain, restored on
    exit).  [`Sweep] forces the classic examine-every-block rounds; the
    default is [`Worklist].  Used by the benchmark harness to measure
    both modes on identical inputs. *)

val pops : unit -> int
(** Monotone count of block examinations (input recomputation + staleness
    check) performed by the calling domain, in either strategy.  Same
    read-before/read-after telemetry contract as
    {!Cache.Analysis.fixpoint_iterations}. *)

val transfers : unit -> int
(** Monotone count of transfer-function applications by the calling
    domain.  Identical across strategies for the same inputs (staleness
    is what gates a transfer); the pops saved are where the worklist
    wins. *)

val count_transfer : unit -> unit
(** For clients driving {!run} directly with their own transfer
    bookkeeping (e.g. {!Value_analysis}). *)

val run :
  Cfg.Graph.t ->
  ?name:string ->
  ?on_round:(unit -> unit) ->
  process:(round:int -> Cfg.Block.id -> [ `Unchanged | `In_changed | `Out_changed ]) ->
  unit ->
  int
(** [run g ~process ()] drives rounds until stable and returns the round
    count.  [process ~round id] must examine block [id] — recompute its
    input from predecessor outs, and re-transfer if stale — and report
    whether nothing changed, only the stored input changed, or the
    out-state changed (which is what schedules successors).  [round] is
    1-based and identical to the sweep number the classic iteration would
    be on, so round-keyed widening clocks carry over unchanged.
    [on_round] fires at the start of each round (telemetry).

    When an {!Obs} sink is installed, each run records a [cat:"fixpoint"]
    span under [name] (default ["fixpoint"]) plus pops/transfers counters
    and a rounds histogram on the sink's metrics. *)

val solve :
  Cfg.Graph.t ->
  ?name:string ->
  entry_fact:'a ->
  join:('a -> 'a -> 'a) ->
  equal:('a -> 'a -> bool) ->
  transfer:(Cfg.Block.id -> 'a -> 'a) ->
  ?on_round:(unit -> unit) ->
  unit ->
  'a option array * 'a option array
(** The ['a option] instantiation shared by the cache fixpoints: [None]
    is bottom, block input is the join of predecessor outs in edge-list
    order with [entry_fact] joined in front for the entry block, and a
    block whose input is still bottom is left untouched.  Returns the
    [ins] and [outs] arrays. *)
