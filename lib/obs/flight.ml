(* A flight dump must never take the server down or fill the disk: every
   filesystem failure is swallowed (the dump is diagnostic, the request
   already completed) and the directory is pruned to [max_files] oldest
   first.  Files are sequence-numbered so ordering survives restarts —
   [open_] rescans and continues after the highest existing number —
   and written via tmp + rename so a reader never sees a torn dump. *)

type t = {
  dir : string;
  max_files : int;
  lock : Mutex.t;
  mutable next_seq : int;
  mutable entries : (int * string) list;  (* (seq, basename), oldest first *)
}

let default_max_files = 64

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let seq_of basename =
  match String.index_opt basename '-' with
  | None -> None
  | Some i -> int_of_string_opt (String.sub basename 0 i)

let open_ ?(max_files = default_max_files) dir =
  mkdir_p dir;
  let entries =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | names ->
        List.sort compare
          (List.filter_map
             (fun n -> Option.map (fun s -> (s, n)) (seq_of n))
             (Array.to_list names))
  in
  let next_seq =
    List.fold_left (fun acc (s, _) -> max acc (s + 1)) 0 entries
  in
  { dir; max_files = max 1 max_files; lock = Mutex.create (); next_seq; entries }

let dir t = t.dir
let max_files t = t.max_files

let sanitize name =
  let name = if name = "" then "trace" else name in
  let name =
    if String.length name > 64 then String.sub name 0 64 else name
  in
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    name

let record t ~name contents =
  Mutex.lock t.lock;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let basename = Printf.sprintf "%08d-%s.json" seq (sanitize name) in
  let path = Filename.concat t.dir basename in
  let written =
    try
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc contents;
      output_char oc '\n';
      close_out oc;
      Sys.rename tmp path;
      true
    with Sys_error _ -> false
  in
  let r =
    if written then begin
      t.entries <- t.entries @ [ (seq, basename) ];
      while List.length t.entries > t.max_files do
        match t.entries with
        | (_, oldest) :: rest ->
            t.entries <- rest;
            (try Sys.remove (Filename.concat t.dir oldest)
             with Sys_error _ -> ())
        | [] -> ()
      done;
      Some basename
    end
    else None
  in
  Mutex.unlock t.lock;
  r

let files t =
  Mutex.lock t.lock;
  let fs = List.map snd t.entries in
  Mutex.unlock t.lock;
  fs
