(** Fixed log-scale (log2) histogram.

    Bucket 0 holds values [<= 0]; bucket [i >= 1] holds the half-open
    range [[2^(i-1), 2^i)].  With 64 buckets every OCaml [int] maps to a
    bucket, so [observe] never fails or saturates. *)

val buckets : int
(** Number of buckets (64). *)

type t

val create : unit -> t
val observe : t -> int -> unit

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the half-open [(lo, hi)] range of bucket [i]:
    [(min_int, 1)] for bucket 0, [(2^(i-1), 2^i)] otherwise (bucket 63's
    upper bound clamps to [max_int]).
    @raise Invalid_argument outside [0, buckets). *)

val merge_into : into:t -> t -> unit
(** Pointwise-add [t] into [into]. *)

type snapshot = {
  s_count : int;
  s_sum : int;
  s_min : int;  (** 0 when empty *)
  s_max : int;  (** 0 when empty *)
  s_buckets : (int * int) list;  (** nonzero [(bucket, count)] pairs *)
}

val snapshot : t -> snapshot
val count : t -> int
val sum : t -> int
