type kind = Counter | Gauge | Hist

type cell =
  | C_counter of int ref
  | C_gauge of int ref
  | C_hist of Histogram.t

type t = {
  lock : Mutex.t;
  cells : (string * kind, cell) Hashtbl.t;
  mutable order : (string * kind) list;  (* reversed *)
}

let create () = { lock = Mutex.create (); cells = Hashtbl.create 16; order = [] }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
      Mutex.unlock t.lock;
      x
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let cell t name kind mk =
  let key = (name, kind) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = mk () in
      Hashtbl.add t.cells key c;
      t.order <- key :: t.order;
      c

let add t name n =
  locked t (fun () ->
      match cell t name Counter (fun () -> C_counter (ref 0)) with
      | C_counter r -> r := !r + n
      | C_gauge _ | C_hist _ -> assert false)

let set_counter t name v =
  locked t (fun () ->
      match cell t name Counter (fun () -> C_counter (ref 0)) with
      | C_counter r -> if v > !r then r := v
      | C_gauge _ | C_hist _ -> assert false)

let set_gauge t name v =
  locked t (fun () ->
      match cell t name Gauge (fun () -> C_gauge (ref 0)) with
      | C_gauge r -> r := v
      | C_counter _ | C_hist _ -> assert false)

let observe t name v =
  locked t (fun () ->
      match cell t name Hist (fun () -> C_hist (Histogram.create ())) with
      | C_hist h -> Histogram.observe h v
      | C_counter _ | C_gauge _ -> assert false)

type item =
  | Counter_v of string * int
  | Gauge_v of string * int
  | Hist_v of string * Histogram.snapshot

let snapshot t =
  locked t (fun () ->
      List.rev_map
        (fun ((name, kind) as key) ->
          match (kind, Hashtbl.find t.cells key) with
          | Counter, C_counter r -> Counter_v (name, !r)
          | Gauge, C_gauge r -> Gauge_v (name, !r)
          | Hist, C_hist h -> Hist_v (name, Histogram.snapshot h)
          | _ -> assert false)
        t.order)

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.cells (name, Counter) with
      | Some (C_counter r) -> !r
      | _ -> 0)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.cells (name, Gauge) with
      | Some (C_gauge r) -> !r
      | _ -> 0)

let hist t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.cells (name, Hist) with
      | Some (C_hist h) -> Some (Histogram.snapshot h)
      | _ -> None)
