type track = {
  tid : int;
  track_name : string;
  ring : Ring.t;
}

type t = {
  clock : unit -> int64;
  metrics : Metrics.t;
  lock : Mutex.t;
  mutable tracks : track list;  (* reversed *)
  mutable next_tid : int;
  track_capacity : int;
}

let default_track_capacity = 1 lsl 16

let create ?clock ?(track_capacity = default_track_capacity) () =
  let clock = match clock with Some c -> c | None -> Monotonic_clock.now in
  {
    clock;
    metrics = Metrics.create ();
    lock = Mutex.create ();
    tracks = [];
    next_tid = 1;
    track_capacity;
  }

let now t = t.clock ()
let metrics t = t.metrics

let new_track t name =
  Mutex.lock t.lock;
  let tr =
    { tid = t.next_tid; track_name = name; ring = Ring.create t.track_capacity }
  in
  t.next_tid <- t.next_tid + 1;
  t.tracks <- tr :: t.tracks;
  Mutex.unlock t.lock;
  tr

let tracks t =
  Mutex.lock t.lock;
  let ts = List.rev t.tracks in
  Mutex.unlock t.lock;
  ts

(* Event recording: single-writer per track by construction (a track is
   only ever written by the domain that currently owns it), so pushes
   need no lock. *)

let begin_ t tr ?(cat = "") ?(args = []) name =
  Ring.push tr.ring
    { Event.ts = t.clock (); kind = Event.Begin { name; cat; args } }

let begin_at tr ~ts ?(cat = "") ?(args = []) name =
  Ring.push tr.ring { Event.ts; kind = Event.Begin { name; cat; args } }

let end_ t tr = Ring.push tr.ring { Event.ts = t.clock (); kind = Event.End }
let end_at tr ~ts = Ring.push tr.ring { Event.ts; kind = Event.End }

let instant t tr ?(cat = "") ?(args = []) name =
  Ring.push tr.ring
    { Event.ts = t.clock (); kind = Event.Instant { name; cat; args } }

let counter t tr ?(cat = "") ?(args = []) name =
  Ring.push tr.ring
    { Event.ts = t.clock (); kind = Event.Counter { name; cat; args } }

let counter_at tr ~ts ?(cat = "") ?(args = []) name =
  Ring.push tr.ring { Event.ts; kind = Event.Counter { name; cat; args } }

(* Export-time repair: a ring that wrapped may have lost Begins whose
   Ends survived (drop those Ends), and a recording interrupted mid-span
   leaves unclosed Begins (synthesize Ends at the last timestamp).  The
   result is balanced and properly nested. *)
let events tr =
  let raw = Ring.to_list tr.ring in
  let depth = ref 0 in
  let kept =
    List.filter
      (fun (e : Event.t) ->
        match e.kind with
        | Event.Begin _ ->
            incr depth;
            true
        | Event.End ->
            if !depth = 0 then false
            else begin
              decr depth;
              true
            end
        | Event.Instant _ | Event.Counter _ -> true)
      raw
  in
  if !depth = 0 then kept
  else
    let last_ts =
      match List.rev kept with e :: _ -> e.Event.ts | [] -> 0L
    in
    kept
    @ List.init !depth (fun _ -> { Event.ts = last_ts; kind = Event.End })

let dropped tr = Ring.dropped tr.ring
let tid tr = tr.tid
let track_name tr = tr.track_name
