(** Prometheus text exposition (format 0.0.4) for a {!Metrics} registry.

    Names are derived mechanically and stably: [paratime_] prefix,
    non-alphanumeric characters mapped to [_], counters suffixed
    [_total].  Histograms render the log2 buckets as cumulative
    [_bucket{le="..."}] samples whose [le] values are the exact
    {!Histogram.bucket_bounds} upper bounds (powers of two), plus the
    conventional [+Inf] bucket, [_sum] and [_count]. *)

val metric_name : string -> string
(** ["server.request_ns"] -> ["paratime_server_request_ns"]. *)

val counter_name : string -> string
(** {!metric_name} plus the [_total] suffix (not doubled). *)

val render : Metrics.t -> string
(** Whole-registry exposition in first-registration order. *)

val render_items : Metrics.item list -> string
