(** Chrome [trace_event] JSON exporter (chrome://tracing / Perfetto).

    The export is a pure function of the recorded events: tracks in tid
    order, each track's events in recording order, one event per line.
    [Begin]/[End] pairs are balanced per tid (ring damage is repaired by
    {!Sink.events}, and [keep] filters whole spans, never half of one).
    Timestamps are microseconds with three decimals — nanosecond-exact.

    [keep] filters events by category (default: keep everything); a
    track with no kept events is omitted entirely, metadata included. *)

val to_json : ?keep:(cat:string -> bool) -> Sink.t -> string
