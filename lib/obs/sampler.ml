type t = { every : int; slow_ns : int64; counter : int Atomic.t }
type decision = { keep : bool; slow : bool }

let create ?(slow_ms = 250) ~every () =
  let slow_ns =
    if slow_ms < 0 then Int64.min_int (* sentinel: never slow *)
    else Int64.mul (Int64.of_int slow_ms) 1_000_000L
  in
  { every; slow_ns; counter = Atomic.make 0 }

let decide t ~cold ~error ~dur_ns =
  let sampled =
    cold
    && t.every > 0
    && Atomic.fetch_and_add t.counter 1 mod t.every = 0
  in
  let slow = t.slow_ns >= 0L && dur_ns >= t.slow_ns in
  { keep = sampled || error || slow; slow }
