(** Trace events.

    A track's buffer holds a flat sequence of events; hierarchy is
    implicit in the [Begin]/[End] nesting, exactly as in the Chrome
    [trace_event] duration-event model.  An [End] closes the most recent
    open [Begin] of its track. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Begin of { name : string; cat : string; args : (string * value) list }
  | End
  | Instant of { name : string; cat : string; args : (string * value) list }
  | Counter of { name : string; cat : string; args : (string * value) list }
      (** a sampled multi-series value (Chrome [ph:"C"] counter track):
          each arg is one series at this timestamp — used for the
          attribution category tracks *)

type t = { ts : int64; kind : kind }

val cat_of : t -> string option
(** The category of a [Begin]/[Instant]; [None] for [End] (an [End]
    belongs to whatever span it closes). *)

val value_to_string : value -> string
