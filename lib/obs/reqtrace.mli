(** Request-scoped trace buffer for the serving path.

    One [t] per request.  Spans are buffered privately (never written to
    a ring while the request runs — connection handlers are sys-threads
    sharing domain 0, which may not write the domain track) and the
    keep/drop decision happens at completion ({!Sampler}).  A kept trace
    is replayed into a dedicated ring track ({!emit}) or dumped as JSON
    ({!to_json}, the flight-recorder format).

    Span ids are allocated in recording order from 1 (the root), so a
    deterministic request produces an identical (id, parent, name) tree
    at any service worker count.  The owning thread records with {!span}
    and {!add_completed}; a service worker domain wraps the job in
    {!with_scope}, which makes every {!Obs.span} inside the job land in
    this trace too (the hook in [Obs.span] calls {!scoped_begin} /
    {!scoped_end}).

    The buffer is unsynchronised by design: a trace belongs to exactly
    one thread of control at a time (the connection thread, then a
    worker domain inside {!with_scope} while the owner blocks in
    [await], then the connection thread again), and each handoff goes
    through the service queue's lock.  Do not share a [t] between
    concurrently running threads.

    At most [max_spans] spans are recorded; further
    spans are dropped but their descendants re-attach to the nearest
    recorded ancestor, so the tree stays connected under truncation. *)

type t

type span = {
  sp_id : int;
  sp_parent : int;  (** 0 only for the root (whose id is 1) *)
  sp_name : string;
  sp_cat : string;
  sp_t0 : int64;
  sp_t1 : int64;
  sp_args : (string * Event.value) list;
}

val default_max_spans : int
(** 4096. *)

val create :
  ?clock:(unit -> int64) ->
  ?max_spans:int ->
  ?cat:string ->
  ?args:(string * Event.value) list ->
  ?t0:int64 ->
  id:string ->
  string ->
  t
(** [create ~id name] opens the root span (id 1) named [name] at [t0]
    (default: now).  [id] is the request's trace id. *)

val trace_id : t -> string

val root : t -> int
(** The root span id (always 1); the parent under which request phases
    hang. *)

val span :
  t -> ?cat:string -> ?args:(string * Event.value) list -> string -> (unit -> 'a) -> 'a
(** Record [f] as a span under the innermost open {!span} (or the root).
    Owner-thread API — keeps its own open stack in [t], no domain-local
    state. *)

val add_completed :
  t ->
  parent:int ->
  ?cat:string ->
  ?args:(string * Event.value) list ->
  t0:int64 ->
  ?t1:int64 ->
  string ->
  unit
(** Record an already-elapsed phase retroactively (parse time, queue
    wait) with an explicit start; [t1] defaults to now. *)

(** {1 Worker-domain scope} *)

val with_scope : t -> parent:int -> (unit -> 'a) -> 'a
(** Route this domain's {!Obs.span} calls into [t] under [parent] for
    the duration of [f].  Per-domain state: safe only where a domain
    runs one traced job at a time (the {!Engine.Service} workers). *)

type scoped =
  | Inactive  (** no scope on this domain *)
  | Scoped of (int * int * string) option
      (** scope active; [Some (id, parent, trace_id)] when the span was
          recorded, [None] when dropped by the [max_spans] cap (the
          matching {!scoped_end} is still required) *)

val scoped_begin :
  ?cat:string -> ?args:(string * Event.value) list -> string -> scoped
(** Hook for [Obs.span]: open a span in the active scope, if any.  Every
    non-[Inactive] return must be balanced by {!scoped_end}. *)

val scoped_end : unit -> unit

(** {1 Completion and export} *)

val finish : t -> ?t1:int64 -> outcome:string -> unit -> int64
(** Close the root at [t1] (default: now — callers that already read
    the clock for their own latency metric pass it through), stamp
    ["outcome"] into its args, return the request duration in ns.
    First call wins; later calls return the same duration. *)

val outcome : t -> string option
val duration_ns : t -> int64

val truncated : t -> int
(** Spans dropped by the [max_spans] cap. *)

val spans : t -> span list
(** All recorded spans in id order, root first.  The tree is connected:
    every parent id is present and smaller than its child's id. *)

val emit : t -> Sink.track -> unit
(** Replay the tree into [track] as one balanced subtree (depth-first,
    children by start time), each [Begin] tagged with
    [trace]/[span]/[parent] args.  The caller serialises concurrent
    emissions onto a shared track. *)

val to_json : t -> string
(** The flight-recorder dump: trace id, outcome, duration, and the span
    tree as one JSON object (single line). *)
