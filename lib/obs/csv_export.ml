(* Flat CSV for the bench harness: completed spans (one row per
   Begin/End pair, depth-first completion order), instants, then the
   metrics registry.  Columns:

     kind,tid,track,cat,name,ts_ns,dur_ns,value

   - span rows:    span,<tid>,<track>,<cat>,<name>,<begin ns>,<dur ns>,
   - instant rows: instant,<tid>,<track>,<cat>,<name>,<ts ns>,,
   - counter events: ctr,<tid>,<track>,<cat>,<name>,<ts ns>,,k=v;k=v
   - counters:     counter,,,,<name>,,,<value>
   - gauges:       gauge,,,,<name>,,,<value>
   - histograms:   hist,,,,<name>,,,count=..;sum=..;min=..;max=..

   Fields are escaped with doubled quotes when they contain a comma,
   quote or newline, so the file stays loadable by any CSV reader. *)

let field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let header = "kind,tid,track,cat,name,ts_ns,dur_ns,value\n"

let to_csv sink =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  let row kind tid track cat name ts dur value =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%s\n" kind tid (field track)
         (field cat) (field name) ts dur (field value))
  in
  List.iter
    (fun tr ->
      let tid = string_of_int (Sink.tid tr) in
      let tname = Sink.track_name tr in
      (* Pair Begin/End with a stack; rows appear in completion order. *)
      let stack = ref [] in
      List.iter
        (fun (e : Event.t) ->
          match e.kind with
          | Event.Begin { name; cat; _ } -> stack := (name, cat, e.ts) :: !stack
          | Event.End -> (
              match !stack with
              | (name, cat, t0) :: rest ->
                  stack := rest;
                  row "span" tid tname cat name (Int64.to_string t0)
                    (Int64.to_string (Int64.sub e.ts t0))
                    ""
              | [] -> ())
          | Event.Instant { name; cat; _ } ->
              row "instant" tid tname cat name (Int64.to_string e.ts) "" ""
          | Event.Counter { name; cat; args } ->
              row "ctr" tid tname cat name (Int64.to_string e.ts) ""
                (String.concat ";"
                   (List.map
                      (fun (k, v) -> k ^ "=" ^ Event.value_to_string v)
                      args)))
        (Sink.events tr))
    (Sink.tracks sink);
  List.iter
    (function
      | Metrics.Counter_v (name, v) ->
          row "counter" "" "" "" name "" "" (string_of_int v)
      | Metrics.Gauge_v (name, v) ->
          row "gauge" "" "" "" name "" "" (string_of_int v)
      | Metrics.Hist_v (name, s) ->
          row "hist" "" "" "" name "" ""
            (Printf.sprintf "count=%d;sum=%d;min=%d;max=%d"
               s.Histogram.s_count s.Histogram.s_sum s.Histogram.s_min
               s.Histogram.s_max))
    (Metrics.snapshot (Sink.metrics sink));
  Buffer.contents b
