(** Fixed-capacity event ring buffer.

    A full ring overwrites its oldest event ([dropped] counts how many
    were lost) rather than blocking or growing — recording cost stays
    constant no matter how long a run is.  Exporters repair the
    [Begin]/[End] imbalance that dropping the front can introduce. *)

type t

val create : int -> t
(** @raise Invalid_argument on a non-positive capacity. *)

val push : t -> Event.t -> unit
val length : t -> int

val dropped : t -> int
(** Events overwritten since creation. *)

val to_list : t -> Event.t list
(** Surviving events, oldest first. *)
