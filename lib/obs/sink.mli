(** Trace collector: a clock, a metrics registry, and a set of tracks
    (per-domain or per-job ring buffers of events).

    Tracks are registered under the sink's lock (tids are assigned in
    registration order, which makes exports deterministic when tracks are
    registered in a deterministic order), but event recording itself is
    lock-free: a track has a single writer at any time — the domain that
    currently owns it — so pushes go straight into the track's ring.

    The [clock] is injectable so tests can drive a virtual clock and get
    bit-identical exports regardless of scheduling; the default is
    CLOCK_MONOTONIC in nanoseconds. *)

type t
type track

val default_track_capacity : int
(** 65536 events per track. *)

val create : ?clock:(unit -> int64) -> ?track_capacity:int -> unit -> t
val now : t -> int64
val metrics : t -> Metrics.t

val new_track : t -> string -> track
(** Register a track; its [tid] is the next in registration order. *)

val tracks : t -> track list
(** In registration order. *)

val tid : track -> int
val track_name : track -> string

val begin_ : t -> track -> ?cat:string -> ?args:(string * Event.value) list -> string -> unit
val begin_at : track -> ts:int64 -> ?cat:string -> ?args:(string * Event.value) list -> string -> unit
val end_ : t -> track -> unit
val end_at : track -> ts:int64 -> unit
val instant : t -> track -> ?cat:string -> ?args:(string * Event.value) list -> string -> unit

val counter : t -> track -> ?cat:string -> ?args:(string * Event.value) list -> string -> unit
(** Record a {!Event.Counter} sample; each arg is one series value. *)

val counter_at : track -> ts:int64 -> ?cat:string -> ?args:(string * Event.value) list -> string -> unit

val events : track -> Event.t list
(** The track's surviving events, oldest first, with ring-wrap damage
    repaired: orphan [End]s dropped, unclosed [Begin]s closed at the last
    timestamp.  Always balanced and properly nested. *)

val dropped : track -> int
