(** Bounded on-disk flight recorder for slow-request trace dumps.

    One directory, at most [max_files] dumps, oldest pruned first.
    Files are named [NNNNNNNN-<name>.json] — the sequence number makes
    ordering survive restarts ({!open_} rescans and continues after the
    highest existing number) — and written via tmp + rename so a
    concurrent reader never sees a torn dump.  Every filesystem error is
    swallowed and reported as [None]: a failed dump must never take the
    serving path down. *)

type t

val default_max_files : int
(** 64. *)

val open_ : ?max_files:int -> string -> t
(** Create [dir] (and parents) if needed and scan existing dumps. *)

val dir : t -> string
val max_files : t -> int

val record : t -> name:string -> string -> string option
(** Write one dump ([name] is sanitised into the filename — client
    trace ids are untrusted), prune beyond the bound, return the
    basename written ([None] on any filesystem error). *)

val files : t -> string list
(** Retained dump basenames, oldest first. *)
