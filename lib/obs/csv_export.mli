(** Flat CSV exporter for the bench harness.

    Columns: [kind,tid,track,cat,name,ts_ns,dur_ns,value].  Span rows
    carry begin-timestamp and duration in nanoseconds; counter/gauge
    rows carry the value; histogram rows summarize as
    [count=..;sum=..;min=..;max=..]. *)

val header : string
(** The header line (with trailing newline). *)

val to_csv : Sink.t -> string
