module Event = Event
module Histogram = Histogram
module Metrics = Metrics
module Ring = Ring
module Sink = Sink
module Trace_export = Trace_export
module Csv_export = Csv_export
module Reqtrace = Reqtrace
module Sampler = Sampler
module Flight = Flight
module Prometheus = Prometheus

let sink_cell : Sink.t option Atomic.t = Atomic.make None
let set_sink s = Atomic.set sink_cell s
let sink () = Atomic.get sink_cell
let enabled () = Atomic.get sink_cell <> None

let with_sink s f =
  let old = Atomic.get sink_cell in
  Atomic.set sink_cell (Some s);
  Fun.protect ~finally:(fun () -> Atomic.set sink_cell old) f

(* The current track of each domain, validated by physical equality
   against the installed sink so a stale entry from a previous sink is
   never written to.  [default_key] caches the per-domain fallback track
   ("domain N") separately so leaving a [with_track] scope returns to
   it without re-registering. *)
let current_key : (Sink.t * Sink.track) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let default_key : (Sink.t * Sink.track) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let track_for s =
  let cur = Domain.DLS.get current_key in
  match !cur with
  | Some (s', tr) when s' == s -> tr
  | _ -> (
      let def = Domain.DLS.get default_key in
      match !def with
      | Some (s', tr) when s' == s -> tr
      | _ ->
          let tr =
            Sink.new_track s
              (Printf.sprintf "domain %d" (Domain.self () :> int))
          in
          def := Some (s, tr);
          tr)

let with_track s tr f =
  let cur = Domain.DLS.get current_key in
  let old = !cur in
  cur := Some (s, tr);
  Fun.protect ~finally:(fun () -> cur := old) f

let now_ns () =
  match Atomic.get sink_cell with
  | Some s -> Sink.now s
  | None -> Monotonic_clock.now ()

(* The no-sink path stays exactly one atomic load; the request-trace
   hook lives on the sink-present branch only.  With a sink but no
   active scope (every path outside a traced service job) the extra
   cost is one domain-local read. *)
let span ?cat ?args name f =
  match Atomic.get sink_cell with
  | None -> f ()
  | Some s -> (
      let tr = track_for s in
      match Reqtrace.scoped_begin ?cat ?args name with
      | Reqtrace.Inactive -> (
          Sink.begin_ s tr ?cat ?args name;
          match f () with
          | x ->
              Sink.end_ s tr;
              x
          | exception e ->
              Sink.end_ s tr;
              raise e)
      | Reqtrace.Scoped info -> (
          (match info with
          | Some (id, parent, trace_id) ->
              let args =
                ("trace", Event.Str trace_id)
                :: ("span", Event.Int id)
                :: ("parent", Event.Int parent)
                :: Option.value ~default:[] args
              in
              Sink.begin_ s tr ?cat ~args name
          | None -> Sink.begin_ s tr ?cat ?args name);
          match f () with
          | x ->
              Reqtrace.scoped_end ();
              Sink.end_ s tr;
              x
          | exception e ->
              Reqtrace.scoped_end ();
              Sink.end_ s tr;
              raise e))

let instant ?cat ?args name =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Sink.instant s (track_for s) ?cat ?args name

let counter ?cat ?args name =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Sink.counter s (track_for s) ?cat ?args name

let emit_begin ~ts ?cat ?args name =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Sink.begin_at (track_for s) ~ts ?cat ?args name

let emit_end ~ts =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Sink.end_at (track_for s) ~ts

let add name n =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Metrics.add (Sink.metrics s) name n

let set_counter name v =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Metrics.set_counter (Sink.metrics s) name v

let set_gauge name v =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Metrics.set_gauge (Sink.metrics s) name v

let observe name v =
  match Atomic.get sink_cell with
  | None -> ()
  | Some s -> Metrics.observe (Sink.metrics s) name v
