(* Fixed-capacity event ring.  Writes never block and never allocate
   beyond the event itself: once full, the oldest event is overwritten
   and counted in [dropped].  Reading (export time) returns the surviving
   events oldest-first. *)

type t = {
  buf : Event.t option array;
  mutable wr : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  { buf = Array.make capacity None; wr = 0; len = 0; dropped = 0 }

let push t e =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.wr) <- Some e;
  t.wr <- (t.wr + 1) mod cap

let length t = t.len
let dropped t = t.dropped

let to_list t =
  let cap = Array.length t.buf in
  let first = (t.wr - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.buf.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)
