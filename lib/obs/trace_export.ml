(* Chrome trace_event JSON ("JSON object format"), loadable by
   chrome://tracing and Perfetto.

   Layout decisions that matter for consumers and for determinism:
   - one event per line, so line-oriented tools (jq -c, grep, the test
     suite's scanner) can stream it;
   - tracks are emitted in tid order and each track's events in recording
     order, so the file is a pure function of the recorded data — two
     runs that record the same events (e.g. under a virtual clock) export
     byte-identical files regardless of domain scheduling;
   - timestamps are microseconds with three decimals, preserving the
     nanosecond exactly;
   - every track with at least one kept event gets a thread_name
     metadata record so Perfetto shows meaningful lane names. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_value b = function
  | Event.Int i -> Buffer.add_string b (string_of_int i)
  | Event.Float f -> Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Event.Bool v -> Buffer.add_string b (string_of_bool v)
  | Event.Str s -> buf_add_json_string b s

let buf_add_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_value b v)
    args;
  Buffer.add_char b '}'

let buf_add_ts b ts =
  (* microseconds, nanosecond-exact: <ns/1000>.<ns mod 1000> *)
  let ns = Int64.to_int ts in
  Buffer.add_string b (Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000))

let pid = 1

let to_json ?(keep = fun ~cat:_ -> true) sink =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b line
  in
  let line_of tr (e : Event.t) =
    let lb = Buffer.create 128 in
    (match e.kind with
    | Event.Begin { name; cat; args }
    | Event.Instant { name; cat; args }
    | Event.Counter { name; cat; args } ->
        Buffer.add_string lb "{\"ph\":";
        Buffer.add_string lb
          (match e.kind with
          | Event.Begin _ -> "\"B\""
          | Event.Counter _ -> "\"C\""
          | _ -> "\"i\"");
        Buffer.add_string lb ",\"name\":";
        buf_add_json_string lb name;
        Buffer.add_string lb ",\"cat\":";
        buf_add_json_string lb (if cat = "" then "default" else cat);
        Buffer.add_string lb ",\"ts\":";
        buf_add_ts lb e.ts;
        Buffer.add_string lb
          (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid (Sink.tid tr));
        (match e.kind with
        | Event.Instant _ -> Buffer.add_string lb ",\"s\":\"t\""
        | _ -> ());
        if args <> [] then begin
          Buffer.add_string lb ",\"args\":";
          buf_add_args lb args
        end;
        Buffer.add_char lb '}'
    | Event.End ->
        Buffer.add_string lb "{\"ph\":\"E\",\"ts\":";
        buf_add_ts lb e.ts;
        Buffer.add_string lb
          (Printf.sprintf ",\"pid\":%d,\"tid\":%d}" pid (Sink.tid tr)));
    Buffer.contents lb
  in
  List.iter
    (fun tr ->
      (* Filter on span boundaries: an End is kept iff the Begin it
         closes is kept, so balance survives filtering. *)
      let keep_stack = ref [] in
      let kept =
        List.filter
          (fun (e : Event.t) ->
            match e.kind with
            | Event.Begin { cat; _ } ->
                let k = keep ~cat in
                keep_stack := k :: !keep_stack;
                k
            | Event.End -> (
                match !keep_stack with
                | k :: rest ->
                    keep_stack := rest;
                    k
                | [] -> false)
            | Event.Instant { cat; _ } | Event.Counter { cat; _ } ->
                keep ~cat)
          (Sink.events tr)
      in
      if kept <> [] then begin
        let mb = Buffer.create 96 in
        Buffer.add_string mb
          (Printf.sprintf
             "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":"
             pid (Sink.tid tr));
        buf_add_json_string mb (Sink.track_name tr);
        Buffer.add_string mb "}}";
        emit (Buffer.contents mb);
        List.iter (fun e -> emit (line_of tr e)) kept
      end)
    (Sink.tracks sink);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
