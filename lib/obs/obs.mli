(** Structured observability: hierarchical spans, typed metrics, and
    per-domain ring buffers behind one ambient switch.

    Tracing is off by default.  Installing a {!Sink.t} with {!set_sink}
    turns every instrumentation point in the toolkit on at once; with no
    sink installed each point costs a single atomic load and a branch,
    which is what keeps the disabled overhead under the bench harness's
    2% budget (bench/perf.exe measures and enforces it).

    Each domain records into its own track (ring buffer), so recording
    is lock-free; {!Pool} additionally routes each job's events onto a
    per-job track registered in job order, which is what makes exports
    deterministic at any worker count.  Exporters merge the tracks at
    read time: {!Trace_export} emits Chrome [trace_event] JSON for
    chrome://tracing / Perfetto, {!Csv_export} a flat CSV for the bench
    harness. *)

module Event = Event
module Histogram = Histogram
module Metrics = Metrics
module Ring = Ring
module Sink = Sink
module Trace_export = Trace_export
module Csv_export = Csv_export
module Reqtrace = Reqtrace
module Sampler = Sampler
module Flight = Flight
module Prometheus = Prometheus

(** {1 Ambient sink} *)

val set_sink : Sink.t option -> unit
(** Install (or remove) the global sink.  Takes effect on every domain
    at its next instrumentation point. *)

val sink : unit -> Sink.t option
val enabled : unit -> bool

val with_sink : Sink.t -> (unit -> 'a) -> 'a
(** Install for the duration of [f], restoring the previous sink. *)

(** {1 Recording} *)

val span : ?cat:string -> ?args:(string * Event.value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a [Begin]/[End] pair on the current
    domain's track (no-op without a sink).  Exceptions pass through; the
    [End] is still recorded.  Inside a {!Reqtrace.with_scope} the span
    is additionally recorded into the active request trace and the ring
    event tagged with [trace]/[span]/[parent] correlation args; without
    a sink the request-trace hook is never consulted, keeping the
    disabled path at a single atomic load. *)

val instant : ?cat:string -> ?args:(string * Event.value) list -> string -> unit

val counter : ?cat:string -> ?args:(string * Event.value) list -> string -> unit
(** Record a {!Event.Counter} sample (Chrome counter-track point) on the
    current domain's track; each arg is one series value. *)

val emit_begin : ts:int64 -> ?cat:string -> ?args:(string * Event.value) list -> string -> unit
(** Low-level: record a [Begin] with an externally read timestamp.  Used
    by callers that need the measured duration themselves (e.g. the
    {!Engine.Telemetry} shim, whose aggregated totals must equal the
    span-derived sums exactly). *)

val emit_end : ts:int64 -> unit

val now_ns : unit -> int64
(** The active clock: the installed sink's (virtual in tests), else
    CLOCK_MONOTONIC nanoseconds. *)

val with_track : Sink.t -> Sink.track -> (unit -> 'a) -> 'a
(** Route the current domain's recording onto [track] for the duration
    of [f].  The pool uses this to give each job its own track. *)

(** {1 Ambient metrics} — all no-ops without a sink. *)

val add : string -> int -> unit
val set_counter : string -> int -> unit
val set_gauge : string -> int -> unit
val observe : string -> int -> unit
