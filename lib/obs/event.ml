type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Begin of { name : string; cat : string; args : (string * value) list }
  | End
  | Instant of { name : string; cat : string; args : (string * value) list }
  | Counter of { name : string; cat : string; args : (string * value) list }

type t = { ts : int64; kind : kind }

let cat_of e =
  match e.kind with
  | Begin { cat; _ } | Instant { cat; _ } | Counter { cat; _ } -> Some cat
  | End -> None

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b
