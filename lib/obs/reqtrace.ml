(* A request trace is buffered privately rather than recorded straight
   into a ring: connection handlers are sys-threads sharing domain 0,
   so they may not write the domain's track, and the keep/drop decision
   (sampling, errors, slow requests) is only known at completion anyway.
   A kept trace is replayed as one balanced subtree into a dedicated
   track ([emit]) and/or dumped as JSON ([to_json]).

   The buffer is deliberately unsynchronised.  A trace is owned by one
   thread of control at a time: the connection thread from [create] to
   [Engine.Service.submit], the worker domain inside [with_scope] while
   the owner blocks in [await], and the connection thread again after
   [await] returns.  The service queue's mutex provides the
   happens-before on each handoff, so a lock here would buy nothing and
   cost a custom-block allocation per request (which accelerates the
   minor GC — measurable at serving rates).

   Span ids are allocated in recording order starting at 1 (the root),
   so for a deterministic request the (id, parent, name) tree is
   identical at any worker count — the property the propagation tests
   pin down.  A trace never grows past [max_spans] completed spans:
   beyond that, new spans are dropped but their children re-attach to
   the nearest recorded ancestor (the current parent simply does not
   advance), keeping the exported tree connected under truncation. *)

type span = {
  sp_id : int;
  sp_parent : int;  (* 0 only for the root *)
  sp_name : string;
  sp_cat : string;
  sp_t0 : int64;
  sp_t1 : int64;
  sp_args : (string * Event.value) list;
}

type t = {
  clock : unit -> int64;
  id : string;
  max_spans : int;
  root_name : string;
  root_cat : string;
  root_args : (string * Event.value) list;
  root_t0 : int64;
  mutable next_id : int;
  mutable completed : span list;  (* reversed *)
  mutable parents : int list;  (* explicit (owner-thread) open-span stack *)
  mutable truncated : int;
  mutable outcome : string option;
  mutable root_t1 : int64;  (* 0 until [finish] *)
}

let default_max_spans = 4096

let create ?clock ?(max_spans = default_max_spans) ?(cat = "") ?(args = [])
    ?t0 ~id name =
  let clock = match clock with Some c -> c | None -> Monotonic_clock.now in
  let root_t0 = match t0 with Some t -> t | None -> clock () in
  {
    clock;
    id;
    max_spans = max 1 max_spans;
    root_name = name;
    root_cat = cat;
    root_args = args;
    root_t0;
    next_id = 2;
    completed = [];
    parents = [ 1 ];
    truncated = 0;
    outcome = None;
    root_t1 = 0L;
  }

let trace_id t = t.id
let root t = ignore t; 1

let alloc t =
  if t.next_id > t.max_spans then begin
    t.truncated <- t.truncated + 1;
    None
  end
  else begin
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Some id
  end

let record t sp = t.completed <- sp :: t.completed

let add_completed t ~parent ?(cat = "") ?(args = []) ~t0 ?t1 name =
  let t1 = match t1 with Some v -> v | None -> t.clock () in
  match alloc t with
  | None -> ()
  | Some id ->
      record t
        {
          sp_id = id;
          sp_parent = parent;
          sp_name = name;
          sp_cat = cat;
          sp_t0 = t0;
          sp_t1 = t1;
          sp_args = args;
        }

let span t ?(cat = "") ?(args = []) name f =
  let t0 = t.clock () in
  let parent = match t.parents with p :: _ -> p | [] -> 1 in
  let id = alloc t in
  (match id with Some i -> t.parents <- i :: t.parents | None -> ());
  let close () =
    let t1 = t.clock () in
    match id with
    | None -> ()
    | Some id ->
        (match t.parents with
        | p :: rest when p = id -> t.parents <- rest
        | _ -> ());
        record t
          {
            sp_id = id;
            sp_parent = parent;
            sp_name = name;
            sp_cat = cat;
            sp_t0 = t0;
            sp_t1 = t1;
            sp_args = args;
          }
  in
  match f () with
  | x ->
      close ();
      x
  | exception e ->
      close ();
      raise e

(* Worker-domain ambient scope.  DLS is safe here because a service
   worker domain runs one job at a time; connection sys-threads (which
   share domain 0) must use the explicit [span] above instead. *)

type open_scoped = {
  os_id : int option;  (* [None]: dropped by the [max_spans] cap *)
  os_saved : int;
  os_t0 : int64;
  os_name : string;
  os_cat : string;
  os_args : (string * Event.value) list;
}

type scope = {
  sc_t : t;
  mutable sc_parent : int;
  mutable sc_open : open_scoped list;
}

let scope_key : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_scope t ~parent f =
  let cell = Domain.DLS.get scope_key in
  let old = !cell in
  cell := Some { sc_t = t; sc_parent = parent; sc_open = [] };
  Fun.protect ~finally:(fun () -> cell := old) f

type scoped = Inactive | Scoped of (int * int * string) option

let scoped_begin ?(cat = "") ?(args = []) name =
  match !(Domain.DLS.get scope_key) with
  | None -> Inactive
  | Some sc ->
      let t = sc.sc_t in
      let id = alloc t in
      sc.sc_open <-
        {
          os_id = id;
          os_saved = sc.sc_parent;
          os_t0 = t.clock ();
          os_name = name;
          os_cat = cat;
          os_args = args;
        }
        :: sc.sc_open;
      Scoped
        (match id with
        | None -> None
        | Some i ->
            let parent = sc.sc_parent in
            sc.sc_parent <- i;
            Some (i, parent, t.id))

let scoped_end () =
  match !(Domain.DLS.get scope_key) with
  | None -> ()
  | Some sc -> (
      match sc.sc_open with
      | [] -> ()
      | os :: rest -> (
          sc.sc_open <- rest;
          sc.sc_parent <- os.os_saved;
          match os.os_id with
          | None -> ()
          | Some id ->
              let t = sc.sc_t in
              let t1 = t.clock () in
              record t
                {
                  sp_id = id;
                  sp_parent = os.os_saved;
                  sp_name = os.os_name;
                  sp_cat = os.os_cat;
                  sp_t0 = os.os_t0;
                  sp_t1 = t1;
                  sp_args = os.os_args;
                }))

let finish t ?t1 ~outcome () =
  if t.outcome = None then begin
    t.outcome <- Some outcome;
    t.root_t1 <- (match t1 with Some v -> v | None -> t.clock ())
  end;
  Int64.sub t.root_t1 t.root_t0

let outcome t = t.outcome
let duration_ns t = Int64.sub t.root_t1 t.root_t0
let truncated t = t.truncated

let spans t =
  let root_t1 =
    if t.root_t1 <> 0L then t.root_t1
    else
      List.fold_left
        (fun acc sp -> if sp.sp_t1 > acc then sp.sp_t1 else acc)
        t.root_t0 t.completed
  in
  let root_args =
    t.root_args
    @
    match t.outcome with
    | None -> []
    | Some o -> [ ("outcome", Event.Str o) ]
  in
  let root =
    {
      sp_id = 1;
      sp_parent = 0;
      sp_name = t.root_name;
      sp_cat = t.root_cat;
      sp_t0 = t.root_t0;
      sp_t1 = root_t1;
      sp_args = root_args;
    }
  in
  List.sort (fun a b -> compare a.sp_id b.sp_id) (root :: t.completed)

(* Replay the tree into [track] as one balanced subtree: depth-first,
   children in (t0, id) order, every Begin tagged with trace/span/parent
   so ring consumers can re-correlate.  The caller owns any serialisation
   needed when several requests share the track. *)
let emit t track =
  let all = spans t in
  let children = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let siblings =
        Option.value ~default:[] (Hashtbl.find_opt children sp.sp_parent)
      in
      Hashtbl.replace children sp.sp_parent (sp :: siblings))
    all;
  let kids parent =
    List.sort
      (fun a b ->
        match Int64.compare a.sp_t0 b.sp_t0 with
        | 0 -> compare a.sp_id b.sp_id
        | c -> c)
      (Option.value ~default:[] (Hashtbl.find_opt children parent))
  in
  let rec push sp =
    let args =
      ("trace", Event.Str t.id)
      :: ("span", Event.Int sp.sp_id)
      :: ("parent", Event.Int sp.sp_parent)
      :: sp.sp_args
    in
    Sink.begin_at track ~ts:sp.sp_t0 ~cat:sp.sp_cat ~args sp.sp_name;
    List.iter push (kids sp.sp_id);
    Sink.end_at track ~ts:sp.sp_t1
  in
  List.iter push (kids 0)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let value_json b = function
  | Event.Int i -> Buffer.add_string b (string_of_int i)
  | Event.Float f -> Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Event.Bool v -> Buffer.add_string b (string_of_bool v)
  | Event.Str s -> escape b s

let to_json t =
  let all = spans t in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"trace_id\":";
  escape b t.id;
  Buffer.add_string b ",\"outcome\":";
  escape b (Option.value ~default:"" (outcome t));
  Buffer.add_string b
    (Printf.sprintf ",\"dur_ns\":%Ld,\"spans_dropped\":%d,\"spans\":["
       (duration_ns t) (truncated t));
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"id\":%d,\"parent\":%d,\"name\":" sp.sp_id
           sp.sp_parent);
      escape b sp.sp_name;
      Buffer.add_string b ",\"cat\":";
      escape b sp.sp_cat;
      Buffer.add_string b
        (Printf.sprintf ",\"t0_ns\":%Ld,\"t1_ns\":%Ld,\"args\":{" sp.sp_t0
           sp.sp_t1);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          value_json b v)
        sp.sp_args;
      Buffer.add_string b "}}")
    all;
  Buffer.add_string b "]}";
  Buffer.contents b
