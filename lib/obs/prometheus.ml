(* Text exposition format, version 0.0.4: one [# TYPE] line per metric,
   then its samples.  Metric names are derived mechanically from the
   registry names ("server.request_ns" -> "paratime_server_request_ns")
   so the mapping is stable across releases; counters get the
   conventional [_total] suffix.  Histograms expose the log2 buckets as
   cumulative [_bucket{le="2^i"}] samples — the [le] values are the
   exact {!Histogram.bucket_bounds} upper bounds, which is what the
   round-trip test pins down. *)

let metric_name name =
  let b = Buffer.create (String.length name + 10) in
  Buffer.add_string b "paratime_";
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let counter_name name =
  let n = metric_name name in
  if
    String.length n >= 6
    && String.sub n (String.length n - 6) 6 = "_total"
  then n
  else n ^ "_total"

let add_hist b name (snap : Histogram.snapshot) =
  Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
  let cum = ref 0 in
  List.iter
    (fun (bucket, count) ->
      cum := !cum + count;
      let _, hi = Histogram.bucket_bounds bucket in
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name hi !cum))
    snap.Histogram.s_buckets;
  Buffer.add_string b
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name snap.Histogram.s_count);
  Buffer.add_string b
    (Printf.sprintf "%s_sum %d\n" name snap.Histogram.s_sum);
  Buffer.add_string b
    (Printf.sprintf "%s_count %d\n" name snap.Histogram.s_count)

let render_items items =
  let b = Buffer.create 1024 in
  List.iter
    (fun item ->
      match item with
      | Metrics.Counter_v (name, v) ->
          let n = counter_name name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n v)
      | Metrics.Gauge_v (name, v) ->
          let n = metric_name name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n v)
      | Metrics.Hist_v (name, snap) -> add_hist b (metric_name name) snap)
    items;
  Buffer.contents b

let render metrics = render_items (Metrics.snapshot metrics)
