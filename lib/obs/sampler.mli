(** Completion-time sampling policy for request traces.

    Cold requests are kept 1-in-[every] under a seeded shared counter
    (the first cold request is always kept, then every [every]-th);
    errors are always kept; requests at or above the slow threshold are
    always kept and additionally flagged [slow] so the server dumps them
    to the flight recorder.  The decision runs at completion because
    that is when outcome and duration are known — recording is cheap,
    keeping is what is sampled. *)

type t

type decision = {
  keep : bool;
  slow : bool;  (** at or above the slow threshold *)
}

val create : ?slow_ms:int -> every:int -> unit -> t
(** [every <= 0] never samples cold requests (errors and slow requests
    are still kept).  [slow_ms] defaults to 250; [0] marks every request
    slow, negative disables the slow path entirely. *)

val decide : t -> cold:bool -> error:bool -> dur_ns:int64 -> decision
(** Only [cold] requests consume the 1-in-N counter. *)
