(** Typed metrics registry: named counters (monotone sums), gauges
    (last-write-wins) and log2 histograms.

    The registry is safe to share between domains: every update takes a
    private mutex for a few dozen nanoseconds.  Hot paths should batch
    (accumulate locally, [add] a delta per phase) rather than update per
    unit of work.  Names live in per-kind namespaces; first-registration
    order is preserved in {!snapshot} so reports read in pipeline
    order. *)

type t

val create : unit -> t

val add : t -> string -> int -> unit
(** Bump a counter. *)

val set_counter : t -> string -> int -> unit
(** Raise a counter to an absolute value (never lowers it) — for
    mirroring an externally maintained monotone total (store hit/miss
    counts, ring drop totals) into the registry at scrape time. *)

val set_gauge : t -> string -> int -> unit
val observe : t -> string -> int -> unit
(** Record a value into the named histogram. *)

type item =
  | Counter_v of string * int
  | Gauge_v of string * int
  | Hist_v of string * Histogram.snapshot

val snapshot : t -> item list
(** In first-registration order. *)

val counter : t -> string -> int
(** Current counter value (0 when absent). *)

val gauge : t -> string -> int
val hist : t -> string -> Histogram.snapshot option
