(* Log2-bucketed histogram: bucket 0 holds values <= 0, bucket i >= 1
   holds [2^(i-1), 2^i).  64 buckets cover every nonnegative OCaml int,
   so recording can never overflow the bucket array. *)

let buckets = 64

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  counts : int array;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = min_int; counts = Array.make buckets 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v): shift v down until it vanishes. *)
    let idx = ref 0 in
    let x = ref v in
    while !x > 0 do
      incr idx;
      x := !x lsr 1
    done;
    !idx
  end

let bucket_bounds i =
  if i < 0 || i >= buckets then invalid_arg "Histogram.bucket_bounds"
  else if i = 0 then (min_int, 1)
  else
    (* On a 63-bit int the top populated bucket is 62; clamp the powers
       that would overflow. *)
    let pow k = if k >= 62 then max_int else 1 lsl k in
    (pow (i - 1), pow i)

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1

let merge_into ~into t =
  into.count <- into.count + t.count;
  into.sum <- into.sum + t.sum;
  if t.count > 0 then begin
    if t.min_v < into.min_v then into.min_v <- t.min_v;
    if t.max_v > into.max_v then into.max_v <- t.max_v
  end;
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts

type snapshot = {
  s_count : int;
  s_sum : int;
  s_min : int;  (* 0 when empty *)
  s_max : int;  (* 0 when empty *)
  s_buckets : (int * int) list;  (* (bucket index, count), nonzero only *)
}

let snapshot t =
  let nonzero = ref [] in
  for i = buckets - 1 downto 0 do
    if t.counts.(i) > 0 then nonzero := (i, t.counts.(i)) :: !nonzero
  done;
  {
    s_count = t.count;
    s_sum = t.sum;
    s_min = (if t.count = 0 then 0 else t.min_v);
    s_max = (if t.count = 0 then 0 else t.max_v);
    s_buckets = !nonzero;
  }

let count t = t.count
let sum t = t.sum
