(** Persistent content-addressed analysis-result store.

    {!Entry}: distilled WCET/BCET results (bound + full {!Attrib}
    decomposition) with a canonical versioned binary codec.
    {!Disk}: the bounded, checksummed, LRU-evicting on-disk layer.
    {!Front}: {!Engine.Lru} of decoded entries in front of a disk, with
    the {!Core.Memo} second-level adapter. *)

module Entry = Entry
module Disk = Disk
module Front = Front
