(** Two-level result cache: a bounded in-memory {!Engine.Lru} of decoded
    entries in front of the on-disk {!Disk} store.

    The memory level holds {!Entry.t} values (no decode on a hot hit);
    the disk level holds encoded blobs.  A disk hit is promoted into the
    memory level.  Both levels are optional-ish by construction: a front
    without a disk is a plain bounded memory cache (a [paratime serve]
    run without [--store-dir]), a front with one is the persistent
    service cache.

    Disk writes go {e write-behind}: [put] lands in the memory level
    synchronously (reads are immediately coherent) and the encoded blob
    is queued for a single background writer thread, so the serving path
    never waits on filesystem syscalls.  The queue is bounded
    ([max_pending]); overflow drops the disk write — counted under
    ["store.write_dropped"] — because losing a cache write only costs a
    future re-analysis.  {!flush} drains the queue.

    Blob-level access ({!find_blob}/{!put_blob}) is the {!Core.Memo}
    second-level interface: {!memo_tier2} adapts a front into the hook
    [Core.Memo.set_tier2] accepts, which is how [paratime batch --store]
    keeps its memo warm across process restarts. *)

type t
type level = Memory | Disk

val create : ?mem_capacity:int -> ?disk:Disk.t -> unit -> t
(** [mem_capacity] bounds the number of decoded entries held in memory
    (default 512). *)

val disk : t -> Disk.t option

val find : t -> string -> (level * Entry.t) option
(** [Memory] hits cost one LRU lookup; [Disk] hits decode and promote. *)

val put : t -> string -> Entry.t -> unit
(** Memory level synchronously; the disk write is queued write-behind. *)

val max_pending : int
(** Bound on queued disk writes (1024). *)

val find_blob : t -> string -> string option
(** Raw encoded blob (memory hits re-encode — the codec is canonical, so
    the bytes equal what {!put} stored). *)

val put_blob : t -> string -> string -> unit
(** Store a raw blob; it is promoted into the memory level only when it
    decodes as an {!Entry.t} (foreign blobs stay disk-only). *)

val memo_tier2 : t -> Core.Memo.tier2
(** Adapt this front as a {!Core.Memo} second-level store. *)

val mem_stats : t -> Engine.Lru.stats
val disk_stats : t -> Disk.stats option

val write_dropped : t -> int
(** Disk writes dropped at queue overflow (also counted under the
    ambient ["store.write_dropped"] metric); [0] without a disk. *)

val flush : t -> unit
(** Block until every queued disk write has landed, then flush the disk
    manifest. *)

val close : t -> unit
(** {!flush}, then stop and join the writer thread.  The front remains
    usable as a memory-only cache afterwards (further disk writes are
    silently dropped). *)
