(** Distilled analysis results: the serving currency of the result store.

    A full {!Core.Wcet.t} carries the platform (including closures) and
    every intermediate analysis structure — it is neither serializable nor
    needed to *serve* a bound.  What a client of the analysis service
    consumes is exactly what this entry keeps: the bound, its kind, and
    the complete per-(procedure, block) {!Attrib} decomposition, which is
    the whole explainability surface [paratime attribute] exposes.

    The codec is a compact versioned binary format (magic + version byte,
    LEB128 varints, zigzag for signed fields).  Encoding is canonical:
    structurally equal entries produce byte-identical blobs, which is what
    lets a warm service reply be compared bit-for-bit against the cold one
    it was distilled from.  {!decode} is total — any malformed input
    (wrong magic, unknown version, truncation, trailing garbage) yields
    [None], never an exception; whole-blob corruption detection is the
    {!Disk} layer's checksummed framing. *)

type t = {
  kind : string;  (** ["wcet"] or ["bcet"] *)
  bound : int;
  attrib : Attrib.t;  (** full per-block decomposition of [bound] *)
}

val of_wcet : Core.Wcet.t -> t
(** Distill a WCET result: [bound] is the root WCET, [attrib] is
    {!Attrib.of_wcet}. *)

val of_bcet : Core.Bcet.t -> t

val encode : t -> string
(** Canonical binary rendering (deterministic: equal entries encode to
    equal strings). *)

val decode : string -> t option
(** Inverse of {!encode}; [None] on any malformed input. *)

val equal : t -> t -> bool
(** Structural equality (the round-trip property of the codec). *)

val to_json : t -> string
(** One-line JSON rendering for protocol replies: kind, bound, the
    per-category totals, per-block rows and overheads. *)

val summary_json : t -> string
(** Like {!to_json} but without the per-block rows — the [analyze]
    reply's payload (the [attribute] reply carries the full rows). *)
