(** On-disk content-addressed result store.

    One file per result under a sharded hash layout
    ([<root>/objects/<k[0..1]>/<key>]), where [key] is the hex
    fingerprint {!Core.Memo}/{!Engine.Fingerprint} already computes for
    an analysis point.  This is everything the guillotine
    [analysis_cache.zig] review said an analysis cache must not omit:
    the store is *bounded* (byte budget with least-recently-used
    eviction), *observable* (hit/miss/eviction/bytes surfaced through
    {!Obs} counters and gauges and the {!stats} record), and *robust*
    (every object is framed with a checksum; a truncated or bit-flipped
    file is a clean miss that deletes the bad object, never a crash).

    Durability model: object writes go to a temp file and [rename] into
    place, so a crash never leaves a half-written object visible.  The
    [MANIFEST] (size accounting and access order) is rewritten atomically
    every few mutations and on {!close}; on open it is reconciled against
    a directory scan, so a stale or missing manifest only costs
    recency information, never correctness.

    One [t] may be shared by every domain of a process: all operations
    take an internal mutex.  (Two processes should not write the same
    root concurrently; readers are always safe.) *)

type t

val default_budget_bytes : int
(** 64 MiB. *)

val open_ : ?budget_bytes:int -> string -> t
(** [open_ root] creates [root] (and its layout) if needed and loads the
    manifest, reconciling it against the objects actually present.
    @raise Invalid_argument if [budget_bytes < 1]. *)

val root : t -> string
val budget_bytes : t -> int

val find : t -> string -> string option
(** Look up a blob by key.  Corrupt objects (checksum mismatch,
    truncation) are deleted and reported as a miss.  A hit refreshes the
    entry's recency. *)

val put : t -> string -> string -> unit
(** Insert (or overwrite) a blob, then evict least-recently-used entries
    until the store fits its byte budget again.  A blob whose on-disk
    size alone exceeds the budget is rejected (counted in
    [stats.oversize], the store is left unchanged).
    @raise Invalid_argument on keys that are not lowercase hex (the
    store is keyed by fingerprints, nothing else belongs in it). *)

val mem : t -> string -> bool
(** No recency or stats update. *)

val flush : t -> unit
(** Write the manifest now. *)

val close : t -> unit
(** {!flush}; the handle stays usable (close is about durability, the
    store holds no file descriptors between operations). *)

type stats = {
  entries : int;
  bytes : int;  (** on-disk payload bytes currently accounted *)
  budget : int;
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
  corrupt : int;  (** objects dropped on checksum/framing mismatch *)
  oversize : int;  (** puts rejected because one blob exceeds the budget *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
