type entry = { size : int; mutable last : int }

type t = {
  root : string;
  budget : int;
  index : (string, entry) Hashtbl.t;
  mutable bytes : int;
  mutable seq : int;  (* recency clock: bumped on every touch *)
  mutable dirty : int;  (* mutations since the manifest was written *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable puts : int;
  mutable corrupt : int;
  mutable oversize : int;
  shards : (string, unit) Hashtbl.t;  (* shard dirs known to exist *)
  lock : Mutex.t;
}

let default_budget_bytes = 64 * 1024 * 1024
let root t = t.root
let budget_bytes t = t.budget
let objects_dir t = Filename.concat t.root "objects"
let tmp_dir t = Filename.concat t.root "tmp"
let manifest_path t = Filename.concat t.root "MANIFEST"
let manifest_magic = "paratime-store v1"

let valid_key k =
  String.length k >= 2
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k

let object_path t key =
  Filename.concat (Filename.concat (objects_dir t) (String.sub key 0 2)) key

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

(* ---------------- object framing ---------------- *)

(* "PTO1" <version> <varint payload length> <payload> <16-byte MD5(payload)>.
   The digest is over the payload only; truncation is caught by the
   length, bit flips by the digest. *)
let obj_magic = "PTO1"
let obj_version = 1

let put_uint b n =
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let frame blob =
  let b = Buffer.create (String.length blob + 32) in
  Buffer.add_string b obj_magic;
  put_uint b obj_version;
  put_uint b (String.length blob);
  Buffer.add_string b blob;
  Buffer.add_string b (Digest.string blob);
  Buffer.contents b

exception Bad_object

let unframe s =
  let len = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= len then raise Bad_object;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let uint () =
    let rec go shift acc =
      if shift > 62 then raise Bad_object;
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  if len < 4 || String.sub s 0 4 <> obj_magic then raise Bad_object;
  pos := 4;
  if uint () <> obj_version then raise Bad_object;
  let n = uint () in
  if !pos + n + 16 <> len then raise Bad_object;
  let blob = String.sub s !pos n in
  let digest = String.sub s (!pos + n) 16 in
  if Digest.string blob <> digest then raise Bad_object;
  blob

(* ---------------- manifest ---------------- *)

let write_manifest t =
  let tmp =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "MANIFEST.%d.%d" (Unix.getpid ()) t.seq)
  in
  let oc = open_out tmp in
  output_string oc (manifest_magic ^ "\n");
  Hashtbl.iter
    (fun key e -> Printf.fprintf oc "%s %d %d\n" key e.size e.last)
    t.index;
  close_out oc;
  Sys.rename tmp (manifest_path t);
  t.dirty <- 0

let read_manifest path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in path in
    let result =
      try
        if input_line ic <> manifest_magic then None
        else begin
          let tbl = Hashtbl.create 256 in
          (try
             while true do
               let line = input_line ic in
               match String.split_on_char ' ' line with
               | [ key; size; last ] ->
                   Hashtbl.replace tbl key
                     (int_of_string size, int_of_string last)
               | _ -> failwith "malformed"
             done
           with End_of_file -> ());
          Some tbl
        end
      with _ -> None
    in
    close_in ic;
    result

(* ---------------- open / accounting ---------------- *)

let gauge t = Obs.set_gauge "store.bytes" t.bytes

let scan_objects t =
  let dir = objects_dir t in
  let shards = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare shards;
  Array.iter
    (fun shard ->
      let sdir = Filename.concat dir shard in
      if Sys.is_directory sdir then begin
        let files = Sys.readdir sdir in
        Array.sort compare files;
        Array.iter
          (fun key ->
            if valid_key key then
              try
                let size =
                  (Unix.stat (Filename.concat sdir key)).Unix.st_size
                in
                Hashtbl.replace t.index key { size; last = 0 };
                t.bytes <- t.bytes + size
              with Unix.Unix_error _ -> ())
          files
      end)
    shards

let open_ ?(budget_bytes = default_budget_bytes) rootdir =
  if budget_bytes < 1 then invalid_arg "Store.Disk.open_: budget_bytes < 1";
  let t =
    {
      root = rootdir;
      budget = budget_bytes;
      index = Hashtbl.create 256;
      bytes = 0;
      seq = 1;
      dirty = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      puts = 0;
      corrupt = 0;
      oversize = 0;
      shards = Hashtbl.create 64;
      lock = Mutex.create ();
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  (* leftover temp files from a crashed writer are garbage *)
  Array.iter
    (fun f -> try Sys.remove (Filename.concat (tmp_dir t) f) with _ -> ())
    (try Sys.readdir (tmp_dir t) with Sys_error _ -> [||]);
  (* ground truth is the directory scan (sizes from stat); the manifest
     only contributes recency for the keys it still correctly lists *)
  scan_objects t;
  (match read_manifest (manifest_path t) with
  | None -> ()
  | Some recorded ->
      Hashtbl.iter
        (fun key e ->
          match Hashtbl.find_opt recorded key with
          | Some (_, last) ->
              e.last <- last;
              t.seq <- max t.seq (last + 1)
          | None -> ())
        t.index);
  gauge t;
  t

let touch t e =
  e.last <- t.seq;
  t.seq <- t.seq + 1

let maybe_flush t = if t.dirty >= 32 then write_manifest t

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---------------- operations ---------------- *)

let drop t key e =
  Hashtbl.remove t.index key;
  t.bytes <- t.bytes - e.size;
  (try Sys.remove (object_path t key) with Sys_error _ -> ());
  t.dirty <- t.dirty + 1

let find t key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.index key with
  | None ->
      t.misses <- t.misses + 1;
      Obs.add "store.miss" 1;
      None
  | Some e -> (
      let t0 = Obs.now_ns () in
      let contents =
        try
          let ic = open_in_bin (object_path t key) in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Some s
        with Sys_error _ | End_of_file -> None
      in
      match Option.map unframe contents with
      | Some blob ->
          touch t e;
          t.hits <- t.hits + 1;
          Obs.add "store.hit" 1;
          Obs.observe "store.read_ns" (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
          Some blob
      | None | (exception Bad_object) ->
          (* checksum mismatch or unreadable: a clean miss, and the bad
             object never gets a second chance *)
          drop t key e;
          t.corrupt <- t.corrupt + 1;
          t.misses <- t.misses + 1;
          Obs.add "store.corrupt" 1;
          Obs.add "store.miss" 1;
          gauge t;
          maybe_flush t;
          None)

let evict_to_budget t =
  while t.bytes > t.budget do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last <= e.last -> acc
          | _ -> Some (key, e))
        t.index None
    in
    match victim with
    | None -> t.bytes <- 0 (* unreachable: bytes > 0 implies an entry *)
    | Some (key, e) ->
        drop t key e;
        t.evictions <- t.evictions + 1;
        Obs.add "store.eviction" 1
  done

let put t key blob =
  if not (valid_key key) then
    invalid_arg (Printf.sprintf "Store.Disk.put: key %S is not a fingerprint" key);
  with_lock t @@ fun () ->
  let framed = frame blob in
  if String.length framed > t.budget then begin
    t.oversize <- t.oversize + 1;
    Obs.add "store.oversize" 1
  end
  else begin
    let t0 = Obs.now_ns () in
    let tmp =
      Filename.concat (tmp_dir t)
        (Printf.sprintf "%s.%d.%d" key (Unix.getpid ()) t.seq)
    in
    let oc = open_out_bin tmp in
    output_string oc framed;
    close_out oc;
    let path = object_path t key in
    (* shard dirs are created once and remembered — two stats per put
       otherwise, which is real money next to a 4-syscall write *)
    let shard = Filename.dirname path in
    if not (Hashtbl.mem t.shards shard) then begin
      mkdir_p shard;
      Hashtbl.replace t.shards shard ()
    end;
    Sys.rename tmp path;
    (match Hashtbl.find_opt t.index key with
    | Some old -> t.bytes <- t.bytes - old.size
    | None -> ());
    let e = { size = String.length framed; last = 0 } in
    touch t e;
    Hashtbl.replace t.index key e;
    t.bytes <- t.bytes + e.size;
    t.puts <- t.puts + 1;
    t.dirty <- t.dirty + 1;
    Obs.add "store.put" 1;
    Obs.observe "store.write_ns" (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
    evict_to_budget t;
    gauge t;
    maybe_flush t
  end

let mem t key = with_lock t @@ fun () -> Hashtbl.mem t.index key
let flush t = with_lock t @@ fun () -> write_manifest t
let close = flush

type stats = {
  entries : int;
  bytes : int;
  budget : int;
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
  corrupt : int;
  oversize : int;
}

let stats t =
  with_lock t @@ fun () ->
  {
    entries = Hashtbl.length t.index;
    bytes = t.bytes;
    budget = t.budget;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    puts = t.puts;
    corrupt = t.corrupt;
    oversize = t.oversize;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d entries, %d/%d bytes, %d hits / %d lookups, %d evictions, %d corrupt"
    s.entries s.bytes s.budget s.hits (s.hits + s.misses) s.evictions s.corrupt
