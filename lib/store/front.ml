(* A disk put is a handful of filesystem syscalls — one to two orders of
   magnitude slower than everything else on the serving path.  Writes
   therefore go write-behind: [put] stores into the in-memory LRU
   synchronously (reads are immediately coherent) and enqueues the disk
   write for a single background writer thread.  Losing queued writes on
   a crash just re-runs those analyses later — this is a cache — and
   [flush] drains the queue for orderly shutdown.  The queue is bounded;
   overflow drops the disk write (counted, never blocks the server). *)

type writer = {
  disk : Disk.t;
  queue : (string * string) Queue.t;
  wlock : Mutex.t;
  nonempty : Condition.t;
  drained : Condition.t;
  mutable stopping : bool;
  mutable in_flight : bool;  (* a popped write not yet on disk *)
  mutable dropped : int;
  thread : Thread.t option ref;
}

let max_pending = 1024

type t = { lru : (string, Entry.t) Engine.Lru.t; writer : writer option }
type level = Memory | Disk

let writer_loop w =
  let rec loop () =
    Mutex.lock w.wlock;
    while Queue.is_empty w.queue && not w.stopping do
      Condition.wait w.nonempty w.wlock
    done;
    if Queue.is_empty w.queue then begin
      (* stopping and fully drained *)
      Condition.broadcast w.drained;
      Mutex.unlock w.wlock
    end
    else begin
      let key, blob = Queue.pop w.queue in
      w.in_flight <- true;
      Mutex.unlock w.wlock;
      (try Disk.put w.disk key blob
       with Invalid_argument _ -> () (* malformed key: drop, never die *));
      Mutex.lock w.wlock;
      w.in_flight <- false;
      if Queue.is_empty w.queue then Condition.broadcast w.drained;
      Mutex.unlock w.wlock;
      loop ()
    end
  in
  loop ()

let create ?(mem_capacity = 512) ?disk () =
  let writer =
    Option.map
      (fun disk ->
        let w =
          {
            disk;
            queue = Queue.create ();
            wlock = Mutex.create ();
            nonempty = Condition.create ();
            drained = Condition.create ();
            stopping = false;
            in_flight = false;
            dropped = 0;
            thread = ref None;
          }
        in
        w.thread := Some (Thread.create writer_loop w);
        w)
      disk
  in
  { lru = Engine.Lru.create ~capacity:mem_capacity (); writer }

let disk t = Option.map (fun w -> w.disk) t.writer

let enqueue_write t key blob =
  Option.iter
    (fun w ->
      Mutex.lock w.wlock;
      if w.stopping || Queue.length w.queue >= max_pending then begin
        w.dropped <- w.dropped + 1;
        Mutex.unlock w.wlock;
        Obs.add "store.write_dropped" 1
      end
      else begin
        Queue.push (key, blob) w.queue;
        Condition.signal w.nonempty;
        Mutex.unlock w.wlock
      end)
    t.writer

let find t key =
  match Engine.Lru.find t.lru key with
  | Some e -> Some (Memory, e)
  | None -> (
      match Option.bind t.writer (fun w -> Disk.find w.disk key) with
      | None -> None
      | Some blob -> (
          match Entry.decode blob with
          | Some e ->
              Engine.Lru.put t.lru key e;
              Some (Disk, e)
          | None -> None))

let put t key e =
  Engine.Lru.put t.lru key e;
  if t.writer <> None then enqueue_write t key (Entry.encode e)

let find_blob t key =
  match Engine.Lru.find t.lru key with
  | Some e -> Some (Entry.encode e)
  | None -> Option.bind t.writer (fun w -> Disk.find w.disk key)

let put_blob t key blob =
  Option.iter (fun e -> Engine.Lru.put t.lru key e) (Entry.decode blob);
  enqueue_write t key blob

let memo_tier2 t =
  {
    Core.Memo.t2_find = (fun ~kind:_ key -> find_blob t key);
    t2_store = (fun ~kind:_ key blob -> put_blob t key blob);
  }

let mem_stats t = Engine.Lru.stats t.lru
let disk_stats t = Option.map (fun w -> Disk.stats w.disk) t.writer

let write_dropped t =
  match t.writer with
  | None -> 0
  | Some w ->
      Mutex.lock w.wlock;
      let d = w.dropped in
      Mutex.unlock w.wlock;
      d

let flush t =
  Option.iter
    (fun w ->
      Mutex.lock w.wlock;
      while (not (Queue.is_empty w.queue)) || w.in_flight do
        Condition.wait w.drained w.wlock
      done;
      Mutex.unlock w.wlock;
      Disk.flush w.disk)
    t.writer

let close t =
  Option.iter
    (fun w ->
      flush t;
      Mutex.lock w.wlock;
      w.stopping <- true;
      Condition.broadcast w.nonempty;
      Mutex.unlock w.wlock;
      (match !(w.thread) with Some th -> Thread.join th | None -> ());
      w.thread := None)
    t.writer
