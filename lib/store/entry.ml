module Vec = Pipeline.Cost.Vec

type t = { kind : string; bound : int; attrib : Attrib.t }

let of_wcet (w : Core.Wcet.t) =
  { kind = "wcet"; bound = w.Core.Wcet.wcet; attrib = Attrib.of_wcet w }

let of_bcet (b : Core.Bcet.t) =
  { kind = "bcet"; bound = b.Core.Bcet.bcet; attrib = Attrib.of_bcet b }

let equal a b =
  a.kind = b.kind && a.bound = b.bound
  && a.attrib.Attrib.label = b.attrib.Attrib.label
  && a.attrib.Attrib.bound = b.attrib.Attrib.bound
  && a.attrib.Attrib.rows = b.attrib.Attrib.rows
  && a.attrib.Attrib.overheads = b.attrib.Attrib.overheads
  && a.attrib.Attrib.total = b.attrib.Attrib.total

(* ---------------- binary codec ---------------- *)

let magic = "PTE1"
let version = 1

(* Unsigned LEB128; signed fields go through zigzag so small negatives
   (the observed side's block = -1) stay one byte. *)
let put_uint b n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_int b n = put_uint b (if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1)

let put_string b s =
  put_uint b (String.length s);
  Buffer.add_string b s

let put_vec b (v : Vec.t) =
  put_int b v.Vec.compute;
  put_int b v.Vec.l1_miss;
  put_int b v.Vec.l2_miss;
  put_int b v.Vec.bus;
  put_int b v.Vec.stall

let put_row b (r : Attrib.row) =
  put_string b r.Attrib.proc;
  put_int b r.Attrib.block;
  (match r.Attrib.count with
  | None -> put_uint b 0
  | Some c ->
      put_uint b 1;
      put_int b c);
  put_vec b r.Attrib.vec

let encode t =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  put_uint b version;
  put_string b t.kind;
  put_int b t.bound;
  put_string b t.attrib.Attrib.label;
  put_int b t.attrib.Attrib.bound;
  put_uint b (List.length t.attrib.Attrib.rows);
  List.iter (put_row b) t.attrib.Attrib.rows;
  put_uint b (List.length t.attrib.Attrib.overheads);
  List.iter
    (fun (name, v) ->
      put_string b name;
      put_vec b v)
    t.attrib.Attrib.overheads;
  put_vec b t.attrib.Attrib.total;
  Buffer.contents b

exception Malformed

type cursor = { s : string; mutable pos : int }

let get_byte c =
  if c.pos >= String.length c.s then raise Malformed;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_uint c =
  let rec go shift acc =
    if shift > 62 then raise Malformed;
    let byte = get_byte c in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int c =
  let n = get_uint c in
  if n land 1 = 0 then n lsr 1 else -((n + 1) lsr 1)

let get_string c =
  let n = get_uint c in
  if n < 0 || c.pos + n > String.length c.s then raise Malformed;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_vec c =
  let compute = get_int c in
  let l1_miss = get_int c in
  let l2_miss = get_int c in
  let bus = get_int c in
  let stall = get_int c in
  { Vec.compute; l1_miss; l2_miss; bus; stall }

let get_list c f = List.init (get_uint c) (fun _ -> f c)

let get_row c =
  let proc = get_string c in
  let block = get_int c in
  let count =
    match get_uint c with
    | 0 -> None
    | 1 -> Some (get_int c)
    | _ -> raise Malformed
  in
  let vec = get_vec c in
  { Attrib.proc; block; count; vec }

let decode s =
  match
    if
      String.length s < String.length magic
      || String.sub s 0 (String.length magic) <> magic
    then raise Malformed;
    let c = { s; pos = String.length magic } in
    if get_uint c <> version then raise Malformed;
    let kind = get_string c in
    let bound = get_int c in
    let label = get_string c in
    let abound = get_int c in
    let rows = get_list c get_row in
    let overheads =
      get_list c (fun c ->
          let name = get_string c in
          (name, get_vec c))
    in
    let total = get_vec c in
    if c.pos <> String.length s then raise Malformed;
    { kind; bound; attrib = { Attrib.label; bound = abound; rows; overheads; total } }
  with
  | t -> Some t
  | exception Malformed -> None

(* ---------------- JSON rendering ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let vec_json (v : Vec.t) =
  Printf.sprintf
    "{\"compute\":%d,\"l1_miss\":%d,\"l2_miss\":%d,\"bus\":%d,\"stall\":%d}"
    v.Vec.compute v.Vec.l1_miss v.Vec.l2_miss v.Vec.bus v.Vec.stall

let base_fields t =
  Printf.sprintf "\"kind\":\"%s\",\"bound\":%d,\"label\":\"%s\",\"total\":%s"
    (json_escape t.kind) t.bound
    (json_escape t.attrib.Attrib.label)
    (vec_json t.attrib.Attrib.total)

let summary_json t = "{" ^ base_fields t ^ "}"

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  Buffer.add_string b (base_fields t);
  Buffer.add_string b ",\"rows\":[";
  List.iteri
    (fun i (r : Attrib.row) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"proc\":\"%s\",\"block\":%d,%s\"vec\":%s}"
           (json_escape r.Attrib.proc)
           r.Attrib.block
           (match r.Attrib.count with
           | Some c -> Printf.sprintf "\"count\":%d," c
           | None -> "")
           (vec_json r.Attrib.vec)))
    t.attrib.Attrib.rows;
  Buffer.add_string b "],\"overheads\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"proc\":\"%s\",\"vec\":%s}" (json_escape name)
           (vec_json v)))
    t.attrib.Attrib.overheads;
  Buffer.add_string b "]}";
  Buffer.contents b
