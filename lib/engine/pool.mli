(** Worker-pool job scheduler on OCaml 5 domains.

    [run] executes a list of jobs on a bounded work queue served by a
    fixed set of worker domains and returns one outcome per job, *in job
    order* regardless of completion order — parallel and sequential runs
    of a deterministic job list are indistinguishable from the results.

    A job that raises yields a [Failed] outcome; it never kills the pool
    or the other jobs.  Runaway jobs (e.g. a joint-interleaving explosion)
    are bounded cooperatively: each job receives a {!ctx} and may call
    {!check} at convenient points; once the configured per-job timeout has
    elapsed, the next [check] raises and the job ends as [Timed_out].
    Jobs that never call [check] simply cannot be interrupted — timing out
    is an opt-in contract between the job body and the scheduler.

    When an {!Obs} sink is installed, [run] traces itself: each job gets
    its own track (registered in job order, so tids — and the merged
    export — are identical at any worker count), each worker a
    ["worker N"] track carrying a [cat:"pool"] span per executed job with
    its queue-wait, and the sink's metrics gain [pool.queue_wait_ns] /
    [pool.run_ns] histograms and a [pool.jobs] counter.  Events the job
    body records land on the job's track. *)

type ctx
(** Per-job cancellation context. *)

exception Timeout

val check : ctx -> unit
(** @raise Timeout once the job's deadline has passed. *)

val elapsed_ns : ctx -> int64
(** Monotonic time since this job started. *)

type 'a job

val job : ?label:string -> (ctx -> 'a) -> 'a job
(** [label] appears in failure/timeout outcomes (default ["job"]). *)

type 'a outcome =
  | Done of 'a
  | Failed of { label : string; error : string }
      (** The job raised; [error] is the printed exception. *)
  | Timed_out of { label : string; after_ns : int64 }

val default_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — leaves a core
    for the coordinating domain. *)

val run : ?workers:int -> ?timeout_ns:int64 -> 'a job list -> 'a outcome list
(** [workers] defaults to {!default_workers}; [workers <= 1] runs the
    jobs in the calling domain (identical outcomes, no domains spawned).
    [timeout_ns] is the per-job budget enforced via {!check}. *)

val map : ?workers:int -> ?timeout_ns:int64 -> ('a -> 'b) -> 'a list -> 'b outcome list
(** [map f xs] = [run (List.map (fun x -> job (fun _ -> f x)) xs)]. *)
