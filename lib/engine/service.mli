(** Persistent worker-domain service with a bounded queue.

    {!Pool} is batch-shaped: it takes a closed job list, spawns workers,
    joins them, returns.  A long-running analysis server needs the
    complement: workers that outlive any one request, a submission path
    that never blocks the caller, and *backpressure* — once the queue is
    full, {!submit} refuses immediately (the server turns that into an
    explicit [busy] reply) instead of letting latency grow without
    bound.

    Submissions may come from any thread or domain; results travel back
    through a {!ticket} ({!await} blocks just the caller).  A job that
    raises resolves its ticket to [Error] with the printed exception —
    it never kills a worker.

    Observability mirrors {!Pool}: each executed job runs inside a
    [cat:"service"] {!Obs} span on its worker's track, and the ambient
    metrics gain [service.queue_wait_ns] / [service.run_ns] histograms
    plus [service.jobs] / [service.rejected] counters. *)

type t

val create : ?workers:int -> ?queue_capacity:int -> unit -> t
(** Spawns [workers] domains (default {!Pool.default_workers}, min 1)
    serving a queue bounded at [queue_capacity] pending jobs (default
    64).
    @raise Invalid_argument if [workers < 1] or [queue_capacity < 0]. *)

val workers : t -> int
val queue_capacity : t -> int

type 'a ticket

val submit :
  t ->
  ?label:string ->
  ?trace:Obs.Reqtrace.t * int ->
  (unit -> 'a) ->
  'a ticket option
(** Enqueue a job; [None] when the queue is at capacity or the service
    is shutting down (the caller should report [busy]).  Never blocks.

    [trace] = [(rt, parent)] attaches the job to a request trace: the
    executing worker records the queue wait retroactively (from the
    enqueue stamp) as a ["queue.wait"] span under [parent], then runs
    the job inside {!Obs.Reqtrace.with_scope} so every [Obs.span] in the
    analysis lands in [rt]'s tree as well as on the worker's track. *)

val await : 'a ticket -> ('a, string) result
(** Block until the job resolves.  [Error] carries the printed
    exception of a job that raised. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, join the workers.
    Idempotent. *)

type stats = {
  s_workers : int;
  s_capacity : int;
  s_queued : int;  (** jobs waiting right now *)
  s_running : int;  (** jobs executing right now *)
  s_completed : int;  (** resolved OK *)
  s_failed : int;  (** resolved by an exception *)
  s_rejected : int;  (** submissions refused at capacity *)
}

val stats : t -> stats
