type t = Buffer.t

let create () = Buffer.create 256

(* Tag + length prefix make the encoding injective per atom sequence. *)
let string b s =
  Buffer.add_char b 's';
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let int b i =
  Buffer.add_char b 'i';
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let ints b l =
  Buffer.add_char b 'l';
  Buffer.add_string b (string_of_int (List.length l));
  Buffer.add_char b ':';
  List.iter (int b) l

let int_array b a =
  Buffer.add_char b 'a';
  Buffer.add_string b (string_of_int (Array.length a));
  Buffer.add_char b ':';
  Array.iter (int b) a

let bool b v = Buffer.add_char b (if v then 't' else 'f')

let digest b = Digest.to_hex (Digest.string (Buffer.contents b))

let of_strings l =
  let b = create () in
  List.iter (string b) l;
  digest b
