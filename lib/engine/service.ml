type job = {
  label : string;
  run : unit -> bool;
  complete : unit -> unit;
      (* resolves the ticket; called only after the traced wrapper
         around [run] has fully closed, so a submitter woken by [await]
         never observes a trace with spans still open *)
  enq_ns : int64;
  trace : (Obs.Reqtrace.t * int) option;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  capacity : int;
  n_workers : int;
  mutable stopping : bool;
  mutable running : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable domains : unit Domain.t list;
}

type 'a state = Pending | Resolved of ('a, string) result

type 'a ticket = {
  tlock : Mutex.t;
  tcond : Condition.t;
  mutable state : 'a state;
}

let now_ns () = Obs.now_ns ()

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping: drain done *)
    else begin
      let job = Queue.pop t.queue in
      t.running <- t.running + 1;
      Mutex.unlock t.lock;
      Obs.observe "service.queue_wait_ns"
        (Int64.to_int (Int64.sub (now_ns ()) job.enq_ns));
      let t0 = now_ns () in
      let ok =
        match job.trace with
        | None -> Obs.span ~cat:"service" job.label job.run
        | Some (rt, parent) ->
            (* the wait is over by the time a worker sees the job, so it
               is recorded retroactively from the enqueue stamp; the run
               itself is scoped so every [Obs.span] inside the analysis
               lands in the request's tree *)
            Obs.Reqtrace.add_completed rt ~parent ~cat:"service"
              ~t0:job.enq_ns "queue.wait";
            Obs.Reqtrace.with_scope rt ~parent (fun () ->
                Obs.span ~cat:"service" job.label job.run)
      in
      job.complete ();
      Obs.observe "service.run_ns" (Int64.to_int (Int64.sub (now_ns ()) t0));
      Obs.add "service.jobs" 1;
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      if ok then t.completed <- t.completed + 1 else t.failed <- t.failed + 1;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ?workers ?(queue_capacity = 64) () =
  let n_workers =
    match workers with Some n -> n | None -> Pool.default_workers ()
  in
  if n_workers < 1 then invalid_arg "Engine.Service.create: workers < 1";
  if queue_capacity < 0 then
    invalid_arg "Engine.Service.create: queue_capacity < 0";
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity = queue_capacity;
      n_workers;
      stopping = false;
      running = 0;
      completed = 0;
      failed = 0;
      rejected = 0;
      domains = [];
    }
  in
  t.domains <- List.init n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.n_workers
let queue_capacity t = t.capacity

let resolve ticket r =
  Mutex.lock ticket.tlock;
  ticket.state <- Resolved r;
  Condition.broadcast ticket.tcond;
  Mutex.unlock ticket.tlock

let submit t ?(label = "job") ?trace f =
  let ticket =
    { tlock = Mutex.create (); tcond = Condition.create (); state = Pending }
  in
  let result = ref (Error "job never ran") in
  let run () =
    match f () with
    | v ->
        result := Ok v;
        true
    | exception e ->
        result := Error (Printexc.to_string e);
        false
  in
  let complete () = resolve ticket !result in
  Mutex.lock t.lock;
  if t.stopping || Queue.length t.queue >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.lock;
    Obs.add "service.rejected" 1;
    None
  end
  else begin
    Queue.push { label; run; complete; enq_ns = now_ns (); trace } t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock;
    Some ticket
  end

let await ticket =
  Mutex.lock ticket.tlock;
  let rec wait () =
    match ticket.state with
    | Pending ->
        Condition.wait ticket.tcond ticket.tlock;
        wait ()
    | Resolved r -> r
  in
  let r = wait () in
  Mutex.unlock ticket.tlock;
  r

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join ds

type stats = {
  s_workers : int;
  s_capacity : int;
  s_queued : int;
  s_running : int;
  s_completed : int;
  s_failed : int;
  s_rejected : int;
}

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      s_workers = t.n_workers;
      s_capacity = t.capacity;
      s_queued = Queue.length t.queue;
      s_running = t.running;
      s_completed = t.completed;
      s_failed = t.failed;
      s_rejected = t.rejected;
    }
  in
  Mutex.unlock t.lock;
  s
