(* Hashtbl + intrusive doubly-linked recency list.  [head] is the
   most-recently-used end, [tail] the eviction end.  All mutation happens
   under [lock]. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards head / more recent *)
  mutable next : ('k, 'v) node option;  (* towards tail / less recent *)
}

type ('k, 'v) t = {
  lock : Mutex.t;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create (min capacity 64);
    cap = capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
      Mutex.unlock t.lock;
      x
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let mem t k = locked t (fun () -> Hashtbl.mem t.table k)

let put t k v =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some n ->
          n.value <- v;
          unlink t n;
          push_front t n
      | None ->
          if Hashtbl.length t.table >= t.cap then (
            match t.tail with
            | Some lru ->
                unlink t lru;
                Hashtbl.remove t.table lru.key;
                t.evictions <- t.evictions + 1
            | None -> assert false);
          let n = { key = k; value = v; prev = None; next = None } in
          Hashtbl.replace t.table k n;
          push_front t n;
          t.insertions <- t.insertions + 1)

let length t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  size : int;
  capacity : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        insertions = t.insertions;
        size = Hashtbl.length t.table;
        capacity = t.cap;
      })

let hit_rate s =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0. else float_of_int s.hits /. float_of_int lookups

let pp_stats ppf s =
  Format.fprintf ppf "%d hits / %d lookups (%.1f%%), %d evictions, %d/%d entries"
    s.hits (s.hits + s.misses)
    (100. *. hit_rate s)
    s.evictions s.size s.capacity
