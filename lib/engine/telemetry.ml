type cell = { mutable total_ns : int64; mutable calls : int }

type t = {
  lock : Mutex.t;
  spans : (string, cell) Hashtbl.t;
  mutable span_order : string list;  (* reversed *)
  counts : (string, int ref) Hashtbl.t;
  mutable count_order : string list;  (* reversed *)
}

let create () =
  {
    lock = Mutex.create ();
    spans = Hashtbl.create 16;
    span_order = [];
    counts = Hashtbl.create 16;
    count_order = [];
  }

let now_ns () = Monotonic_clock.now ()

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
      Mutex.unlock t.lock;
      x
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let add_ns t phase ns =
  locked t (fun () ->
      let cell =
        match Hashtbl.find_opt t.spans phase with
        | Some c -> c
        | None ->
            let c = { total_ns = 0L; calls = 0 } in
            Hashtbl.add t.spans phase c;
            t.span_order <- phase :: t.span_order;
            c
      in
      cell.total_ns <- Int64.add cell.total_ns ns;
      cell.calls <- cell.calls + 1)

let span t phase f =
  let t0 = now_ns () in
  match f () with
  | x ->
      add_ns t phase (Int64.sub (now_ns ()) t0);
      x
  | exception e ->
      add_ns t phase (Int64.sub (now_ns ()) t0);
      raise e

let add t name n =
  locked t (fun () ->
      match Hashtbl.find_opt t.counts name with
      | Some r -> r := !r + n
      | None ->
          Hashtbl.add t.counts name (ref n);
          t.count_order <- name :: t.count_order)

type phase = { phase : string; total_ns : int64; calls : int }

let phases t =
  locked t (fun () ->
      List.rev_map
        (fun name ->
          let c = Hashtbl.find t.spans name in
          { phase = name; total_ns = c.total_ns; calls = c.calls })
        t.span_order)

let counters t =
  locked t (fun () ->
      List.rev_map (fun name -> (name, !(Hashtbl.find t.counts name))) t.count_order)

let total_ns t =
  List.fold_left (fun acc p -> Int64.add acc p.total_ns) 0L (phases t)

let ms ns = Int64.to_float ns /. 1e6

let render t =
  let ps = phases t and cs = counters t in
  if ps = [] && cs = [] then ""
  else begin
    let b = Buffer.create 256 in
    let total = total_ns t in
    if ps <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-24s %12s %7s %8s\n" "phase" "ms" "share" "calls");
      List.iter
        (fun p ->
          let share =
            if Int64.compare total 0L > 0 then
              100. *. Int64.to_float p.total_ns /. Int64.to_float total
            else 0.
          in
          Buffer.add_string b
            (Printf.sprintf "%-24s %12.3f %6.1f%% %8d\n" p.phase (ms p.total_ns)
               share p.calls))
        ps;
      Buffer.add_string b
        (Printf.sprintf "%-24s %12.3f %6.1f%%\n" "total" (ms total) 100.)
    end;
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-24s %12d\n" name v))
      cs;
    Buffer.contents b
  end

let to_csv t =
  let b = Buffer.create 256 in
  Buffer.add_string b "kind,name,value,calls\n";
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "phase,%s,%Ld,%d\n" p.phase p.total_ns p.calls))
    (phases t);
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "counter,%s,%d,\n" name v))
    (counters t);
  Buffer.contents b
