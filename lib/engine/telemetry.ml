(* Shim over the Obs layer: a [t] is an Obs metrics registry (phase
   histograms + counters) of its own, and every [span] additionally
   mirrors Begin/End events into the ambient Obs sink when one is
   installed — with the *same* timestamps used for the aggregate, so
   the totals reported here equal the span-derived sums from the trace
   exactly (test_engine asserts this). *)

type t = { metrics : Obs.Metrics.t }

let create () = { metrics = Obs.Metrics.create () }
let now_ns () = Monotonic_clock.now ()

let add_ns t phase ns = Obs.Metrics.observe t.metrics phase (Int64.to_int ns)

let span t phase f =
  let t0 = Obs.now_ns () in
  Obs.emit_begin ~ts:t0 ~cat:"phase" phase;
  let finish () =
    let t1 = Obs.now_ns () in
    Obs.emit_end ~ts:t1;
    add_ns t phase (Int64.sub t1 t0)
  in
  match f () with
  | x ->
      finish ();
      x
  | exception e ->
      finish ();
      raise e

let add t name n = Obs.Metrics.add t.metrics name n

type phase = { phase : string; total_ns : int64; calls : int }

let phases t =
  List.filter_map
    (function
      | Obs.Metrics.Hist_v (name, s) ->
          Some
            {
              phase = name;
              total_ns = Int64.of_int s.Obs.Histogram.s_sum;
              calls = s.Obs.Histogram.s_count;
            }
      | Obs.Metrics.Counter_v _ | Obs.Metrics.Gauge_v _ -> None)
    (Obs.Metrics.snapshot t.metrics)

let counters t =
  List.filter_map
    (function
      | Obs.Metrics.Counter_v (name, v) -> Some (name, v)
      | Obs.Metrics.Hist_v _ | Obs.Metrics.Gauge_v _ -> None)
    (Obs.Metrics.snapshot t.metrics)

let metrics t = t.metrics

let total_ns t =
  List.fold_left (fun acc p -> Int64.add acc p.total_ns) 0L (phases t)

let ms ns = Int64.to_float ns /. 1e6

let render t =
  let ps = phases t and cs = counters t in
  if ps = [] && cs = [] then ""
  else begin
    let b = Buffer.create 256 in
    let total = total_ns t in
    if ps <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-24s %12s %7s %8s\n" "phase" "ms" "share" "calls");
      List.iter
        (fun p ->
          let share =
            if Int64.compare total 0L > 0 then
              100. *. Int64.to_float p.total_ns /. Int64.to_float total
            else 0.
          in
          Buffer.add_string b
            (Printf.sprintf "%-24s %12.3f %6.1f%% %8d\n" p.phase (ms p.total_ns)
               share p.calls))
        ps;
      Buffer.add_string b
        (Printf.sprintf "%-24s %12.3f %6.1f%%\n" "total" (ms total) 100.)
    end;
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%-24s %12d\n" name v))
      cs;
    Buffer.contents b
  end

let csv_header = "kind,name,value,calls\n"

let csv_rows t =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "phase,%s,%Ld,%d\n" p.phase p.total_ns p.calls))
    (phases t);
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "counter,%s,%d,\n" name v))
    (counters t);
  Buffer.contents b

let to_csv t = csv_header ^ csv_rows t
