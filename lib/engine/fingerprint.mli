(** Structural fingerprints for memoization keys.

    A fingerprint is built by feeding typed atoms into an accumulator and
    digesting the canonical byte rendering (MD5).  Every atom is
    length/tag-prefixed, so distinct atom sequences cannot collide by
    concatenation ambiguity — ["ab" ^ "c"] and ["a" ^ "bc"] fingerprint
    differently.  Callers are responsible for feeding *all* inputs their
    computation depends on; {!Core.Memo} builds keys from (program,
    annotations, platform configuration) renderings. *)

type t

val create : unit -> t
val string : t -> string -> unit
val int : t -> int -> unit
val ints : t -> int list -> unit
val int_array : t -> int array -> unit
val bool : t -> bool -> unit

val digest : t -> string
(** Hex MD5 of everything fed so far (does not reset the accumulator). *)

val of_strings : string list -> string
(** One-shot: fingerprint a list of string atoms. *)
