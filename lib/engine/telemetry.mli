(** Phase telemetry: monotonic-clock timers and counters for the analysis
    pipeline (CFG build, value analysis, cache fixpoints, IPET solve,
    simplex pivots, ...).

    A [t] is a mutable accumulator safe to share between domains: spans
    and counter bumps performed concurrently by worker domains all land in
    the same record (each update holds a private mutex for a few dozen
    nanoseconds).  Phases keep their first-seen order, so reports read in
    pipeline order.

    Since the [lib/obs] layer landed this module is a thin shim over it:
    a [t] is an {!Obs.Metrics.t} registry (one histogram per phase, one
    counter per name), and {!span} also mirrors Begin/End events into the
    ambient {!Obs} sink when tracing is on — with the same timestamps it
    aggregates, so the totals here equal the trace's span-derived sums
    exactly. *)

type t

val create : unit -> t

val now_ns : unit -> int64
(** The monotonic clock the timers use (CLOCK_MONOTONIC, nanoseconds). *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t phase f] runs [f ()], accumulating its wall-clock duration
    (and one call) under [phase].  Exceptions pass through; the time spent
    until the raise is still recorded. *)

val add_ns : t -> string -> int64 -> unit
(** Accumulate an externally measured duration (one call) under a phase. *)

val add : t -> string -> int -> unit
(** Bump a named counter. *)

type phase = { phase : string; total_ns : int64; calls : int }

val phases : t -> phase list
(** In first-recorded order. *)

val counters : t -> (string * int) list
(** In first-recorded order. *)

val metrics : t -> Obs.Metrics.t
(** The backing registry (phases are its histograms, counters its
    counters). *)

val total_ns : t -> int64
(** Sum over all phases. *)

val render : t -> string
(** Human-readable text summary: per-phase time/share/calls, then
    counters.  Empty string when nothing was recorded. *)

val csv_header : string
(** The CSV header line (with trailing newline).  Exposed separately so
    streaming consumers can emit it up front — a run killed mid-way then
    still leaves a parseable file. *)

val csv_rows : t -> string
(** The data rows only: [phase,<name>,<ns>,<calls>] and
    [counter,<name>,<value>,]. *)

val to_csv : t -> string
(** [csv_header ^ csv_rows t]. *)
