(** Phase telemetry: monotonic-clock timers and counters for the analysis
    pipeline (CFG build, value analysis, cache fixpoints, IPET solve,
    simplex pivots, ...).

    A [t] is a mutable accumulator safe to share between domains: spans
    and counter bumps performed concurrently by worker domains all land in
    the same record (each update holds a private mutex for a few dozen
    nanoseconds).  Phases keep their first-seen order, so reports read in
    pipeline order. *)

type t

val create : unit -> t

val now_ns : unit -> int64
(** The monotonic clock the timers use (CLOCK_MONOTONIC, nanoseconds). *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t phase f] runs [f ()], accumulating its wall-clock duration
    (and one call) under [phase].  Exceptions pass through; the time spent
    until the raise is still recorded. *)

val add_ns : t -> string -> int64 -> unit
(** Accumulate an externally measured duration (one call) under a phase. *)

val add : t -> string -> int -> unit
(** Bump a named counter. *)

type phase = { phase : string; total_ns : int64; calls : int }

val phases : t -> phase list
(** In first-recorded order. *)

val counters : t -> (string * int) list
(** In first-recorded order. *)

val total_ns : t -> int64
(** Sum over all phases. *)

val render : t -> string
(** Human-readable text summary: per-phase time/share/calls, then
    counters.  Empty string when nothing was recorded. *)

val to_csv : t -> string
(** [kind,name,value] rows: [phase,<name>,<ns>,<calls>] and
    [counter,<name>,<value>], with a header line. *)
