type ctx = { start_ns : int64; deadline_ns : int64 option }

exception Timeout

let check ctx =
  match ctx.deadline_ns with
  | Some d when Int64.compare (Telemetry.now_ns ()) d > 0 -> raise Timeout
  | Some _ | None -> ()

let elapsed_ns ctx = Int64.sub (Telemetry.now_ns ()) ctx.start_ns

type 'a job = { label : string; work : ctx -> 'a }

let job ?(label = "job") work = { label; work }

type 'a outcome =
  | Done of 'a
  | Failed of { label : string; error : string }
  | Timed_out of { label : string; after_ns : int64 }

(* Bounded FIFO of job indices: producers block while full, consumers
   block while empty, [close] wakes everyone up for shutdown. *)
module Bqueue = struct
  type t = {
    lock : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    buf : int array;
    mutable rd : int;
    mutable wr : int;
    mutable len : int;
    mutable closed : bool;
  }

  let create capacity =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      buf = Array.make capacity 0;
      rd = 0;
      wr = 0;
      len = 0;
      closed = false;
    }

  let push q x =
    Mutex.lock q.lock;
    while q.len = Array.length q.buf && not q.closed do
      Condition.wait q.not_full q.lock
    done;
    if q.closed then begin
      Mutex.unlock q.lock;
      invalid_arg "Bqueue.push: closed"
    end;
    q.buf.(q.wr) <- x;
    q.wr <- (q.wr + 1) mod Array.length q.buf;
    q.len <- q.len + 1;
    Condition.signal q.not_empty;
    Mutex.unlock q.lock

  let pop q =
    Mutex.lock q.lock;
    while q.len = 0 && not q.closed do
      Condition.wait q.not_empty q.lock
    done;
    let x =
      if q.len = 0 then None
      else begin
        let v = q.buf.(q.rd) in
        q.rd <- (q.rd + 1) mod Array.length q.buf;
        q.len <- q.len - 1;
        Condition.signal q.not_full;
        Some v
      end
    in
    Mutex.unlock q.lock;
    x

  let close q =
    Mutex.lock q.lock;
    q.closed <- true;
    Condition.broadcast q.not_empty;
    Condition.broadcast q.not_full;
    Mutex.unlock q.lock
end

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

(* Tracing state of one pool run.  Job tracks are registered up front in
   job order, so their tids — and therefore the merged export — do not
   depend on which worker ends up executing which job; each worker gets
   its own track for the queue-wait/run breakdown. *)
type trace = {
  obs : Obs.Sink.t;
  job_tracks : Obs.Sink.track array;
  enqueued_ns : int64 array;  (* when the job became runnable *)
}

let make_trace jobs =
  match Obs.sink () with
  | None -> None
  | Some obs ->
      Some
        {
          obs;
          job_tracks =
            Array.map
              (fun j -> Obs.Sink.new_track obs ("job:" ^ j.label))
              jobs;
          enqueued_ns = Array.make (Array.length jobs) 0L;
        }

let run ?workers ?timeout_ns jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  let results = Array.make n None in
  let trace = make_trace jobs in
  let worker_track =
    match trace with
    | None -> fun _ -> None
    | Some tr ->
        (* One track per worker, created lazily by worker index so a
           sequential run registers exactly one. *)
        let tracks = Array.make (max 1 workers) None in
        fun w ->
          (match tracks.(w) with
          | Some _ -> ()
          | None ->
              tracks.(w) <-
                Some (Obs.Sink.new_track tr.obs (Printf.sprintf "worker %d" w)));
          tracks.(w)
  in
  let exec ~worker i =
    let j = jobs.(i) in
    let start = Telemetry.now_ns () in
    let ctx =
      { start_ns = start; deadline_ns = Option.map (Int64.add start) timeout_ns }
    in
    let body () =
      let outcome =
        match j.work ctx with
        | v -> Done v
        | exception Timeout ->
            Timed_out { label = j.label; after_ns = elapsed_ns ctx }
        | exception e ->
            Failed { label = j.label; error = Printexc.to_string e }
      in
      results.(i) <- Some outcome
    in
    match trace with
    | None -> body ()
    | Some tr ->
        let t0 = Obs.Sink.now tr.obs in
        let queue_ns = Int64.to_int (Int64.sub t0 tr.enqueued_ns.(i)) in
        let m = Obs.Sink.metrics tr.obs in
        Obs.Metrics.observe m "pool.queue_wait_ns" queue_ns;
        (match worker_track worker with
        | None -> ()
        | Some wt ->
            Obs.Sink.begin_at wt ~ts:t0 ~cat:"pool"
              ~args:
                [
                  ("job", Obs.Event.Str j.label);
                  ("index", Obs.Event.Int i);
                  ("queue_ns", Obs.Event.Int queue_ns);
                ]
              ("run:" ^ j.label));
        Fun.protect
          ~finally:(fun () ->
            let t1 = Obs.Sink.now tr.obs in
            Obs.Metrics.observe m "pool.run_ns"
              (Int64.to_int (Int64.sub t1 t0));
            Obs.Metrics.add m "pool.jobs" 1;
            match worker_track worker with
            | None -> ()
            | Some wt -> Obs.Sink.end_at wt ~ts:t1)
          (fun () -> Obs.with_track tr.obs tr.job_tracks.(i) body)
  in
  let mark_enqueued i =
    match trace with
    | None -> ()
    | Some tr -> tr.enqueued_ns.(i) <- Obs.Sink.now tr.obs
  in
  if workers <= 1 || n <= 1 then begin
    for i = 0 to n - 1 do
      mark_enqueued i
    done;
    for i = 0 to n - 1 do
      exec ~worker:0 i
    done
  end
  else begin
    let q = Bqueue.create (2 * workers) in
    let worker w () =
      let rec loop () =
        match Bqueue.pop q with
        | Some i ->
            exec ~worker:w i;
            loop ()
        | None -> ()
      in
      loop ()
    in
    let domains =
      Array.init (min workers n) (fun w -> Domain.spawn (worker w))
    in
    for i = 0 to n - 1 do
      mark_enqueued i;
      Bqueue.push q i
    done;
    Bqueue.close q;
    Array.iter Domain.join domains
  end;
  Array.to_list
    (Array.map (function Some o -> o | None -> assert false) results)

let map ?workers ?timeout_ns f xs =
  run ?workers ?timeout_ns (List.map (fun x -> job (fun _ -> f x)) xs)
