(** Bounded, thread-safe LRU cache with hit/miss/eviction statistics.

    Backs the memoizing analysis front-end ({!Core.Memo}): keys are
    structural fingerprints of (program, annotations, platform
    configuration), values are analysis results.  Size-based eviction
    drops the least-recently-used entry once [capacity] is reached, so a
    long batch run cannot grow without bound.

    All operations take an internal mutex, so one cache may serve every
    worker domain of a {!Pool} run. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most-recently-used and counts a hit; counts a miss
    when absent. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace (either way the entry becomes most-recently-used);
    evicts the least-recently-used entry when at capacity. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test: no recency update, no stats update. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit
(** Drop all entries; statistics are kept. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  size : int;
  capacity : int;
}

val stats : ('k, 'v) t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val pp_stats : Format.formatter -> stats -> unit
(** e.g. ["42 hits / 130 lookups (32.3%), 7 evictions, 88/256 entries"]. *)
