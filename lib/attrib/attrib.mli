(** Cycle attribution: where a WCET/BCET bound — or an observed run —
    spends its cycles, decomposed per (procedure, block) over the five
    categories of {!Pipeline.Cost.category}.

    The analytic side redistributes the IPET solution *flat*: the bound
    folds a callee's WCET into the calling block's cost, but here those
    cycles are charged to the callee's own blocks, weighted by the
    call-path multiplicity.  That makes the analytic view directly
    comparable to the simulator's per-block counters
    ({!Sim.Machine.core_result.block_attrib}), which naturally charge a
    callee's cycles to the callee.

    Everything is exact integer arithmetic on the same vectors the
    analyses produced: for every view built here the per-category (and
    per-block) sums equal the bound (or the observed cycle count)
    bit-exactly — the invariant the property tests and the CI smoke job
    assert. *)

module Vec = Pipeline.Cost.Vec

type row = {
  proc : string;
  block : int;  (** [-1] for the observed side's unattributed remainder *)
  count : int option;
      (** executions on the bound path (flat multiplicity); [None] on
          the observed side, which counts cycles, not traversals *)
  vec : Vec.t;  (** total cycles of this block, per category *)
}

type t = {
  label : string;  (** ["wcet"], ["bcet"] or ["observed"] *)
  bound : int;  (** the bound, or the observed cycle count *)
  rows : row list;  (** sorted by (proc, block) *)
  overheads : (string * Vec.t) list;
      (** per-procedure one-time costs (persistence first misses,
          method-cache loads) x multiplicity; analytic sides only *)
  total : Vec.t;
      (** sum of rows and overheads; [Vec.total total = bound]
          bit-exactly (observed side: for a halted core) *)
}

val of_wcet : Core.Wcet.t -> t
(** Flat attribution of the WCET bound.  Multiplicities propagate
    top-down over the call graph: the root executes once, a callee
    inherits [count(call block) * mult(caller)] from each call site. *)

val of_bcet : Core.Bcet.t -> t

val observed : Sim.Machine.core_result -> t
(** The simulator's per-block counters as the same shape.  Cycles not
    attributable to a block (no CFG location for the pc) appear as a
    single [("(unattributed)", -1)] row, so the rows always sum to
    [attrib] exactly. *)

type gap = {
  g_analysis : t;
  g_observed : t;
  diff : Vec.t;  (** [analysis - observed] per category; components can
                     be negative on categories the run exceeded *)
  per_block : ((string * int) * Vec.t) list;
      (** per-(proc, block) gap over the union of both sides' rows *)
  dominant : Pipeline.Cost.category;
      (** the category dominating the pessimism, [Vec.dominant diff] *)
}

val gap : analysis:t -> observed:t -> gap
(** [Vec.total diff = analysis.bound - observed.bound] bit-exactly. *)

(** {1 Rendering} *)

val render : t -> string
(** Text table: one line per block, overheads, and a TOTAL line. *)

val render_gap : gap -> string
(** Per-category analysis/observed/gap table plus the dominant
    category. *)

val csv_header : string
(** [side,proc,block,count,compute,l1_miss,l2_miss,bus,stall,total]. *)

val csv_rows : side:string -> t -> string
(** Per-block rows, overhead rows (block ["overhead"]), and a TOTAL row
    whose [total] column is [bound]. *)

val gap_csv_rows : gap -> string
(** The per-block gap and its TOTAL row under side ["gap"]. *)

val emit_counters : side:string -> t -> unit
(** Record the attribution as an {!Obs} counter track
    ([attrib.<side>], category ["attrib"]): one sample per row with the
    five categories as args, then an [attrib.<side>.total] sample.
    No-op without an installed sink. *)
