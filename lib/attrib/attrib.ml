(* Flat cycle attribution over (procedure, block) x category.

   The analytic bound is compositional: a calling block's cost folds in
   the callee's whole WCET.  The simulator's counters are flat: a
   callee's cycles land on the callee's blocks.  To compare the two
   sides block by block, the analytic side is flattened here by
   propagating execution multiplicities top-down over the call graph —
   the root runs once, and each call site hands its callee
   [count(call block) * mult(caller)] executions.  Everything is exact
   integer arithmetic on vectors the analyses already produced, so the
   redistribution cannot leak or invent cycles; the [assert]s pin the
   per-category sums to the bound. *)

module Vec = Pipeline.Cost.Vec

type row = { proc : string; block : int; count : int option; vec : Vec.t }

type t = {
  label : string;
  bound : int;
  rows : row list;
  overheads : (string * Vec.t) list;
  total : Vec.t;
}

let sort_rows rows =
  List.sort (fun a b -> compare (a.proc, a.block) (b.proc, b.block)) rows

let sum_vecs vecs = List.fold_left Vec.add Vec.zero vecs

(* Multiplicity propagation shared by the WCET and BCET sides.  [procs]
   is bottom-up (root last); reversing it visits callers before their
   callees, so by the time a procedure is charged its multiplicity is
   final. *)
let flatten ~program ~procs ~counts_of ~attrib_of ~overhead_of =
  let cg = Cfg.Callgraph.build program in
  let mult = Hashtbl.create 16 in
  Hashtbl.replace mult cg.Cfg.Callgraph.root 1;
  let rows = ref [] and overheads = ref [] in
  List.iter
    (fun (name, pr) ->
      let m = Option.value ~default:0 (Hashtbl.find_opt mult name) in
      let g = Cfg.Callgraph.graph cg name in
      let counts = counts_of pr and attrib = attrib_of pr in
      for b = 0 to Cfg.Graph.num_blocks g - 1 do
        let n = counts.(b) * m in
        rows :=
          { proc = name; block = b; count = Some n; vec = Vec.scale n attrib.(b) }
          :: !rows;
        match Cfg.Graph.callee_of_block g b with
        | Some callee ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt mult callee) in
            Hashtbl.replace mult callee (cur + n)
        | None -> ()
      done;
      match overhead_of pr with
      | Some ov -> overheads := (name, Vec.scale m ov) :: !overheads
      | None -> ())
    (List.rev procs);
  let rows = sort_rows !rows and overheads = List.rev !overheads in
  let total =
    Vec.add
      (sum_vecs (List.map (fun r -> r.vec) rows))
      (sum_vecs (List.map snd overheads))
  in
  (rows, overheads, total)

let of_wcet (w : Core.Wcet.t) =
  let rows, overheads, total =
    flatten ~program:w.Core.Wcet.program ~procs:w.Core.Wcet.procs
      ~counts_of:(fun (pr : Core.Wcet.proc_result) ->
        pr.Core.Wcet.ipet.Core.Ipet.block_counts)
      ~attrib_of:(fun pr -> pr.Core.Wcet.attrib)
      ~overhead_of:(fun pr -> Some pr.Core.Wcet.overhead_vec)
  in
  assert (Vec.total total = w.Core.Wcet.wcet);
  { label = "wcet"; bound = w.Core.Wcet.wcet; rows; overheads; total }

let of_bcet (b : Core.Bcet.t) =
  let rows, overheads, total =
    flatten ~program:b.Core.Bcet.program ~procs:b.Core.Bcet.procs
      ~counts_of:(fun (pr : Core.Bcet.proc_result) ->
        pr.Core.Bcet.ipet.Core.Ipet.block_counts)
      ~attrib_of:(fun pr -> pr.Core.Bcet.attrib)
      ~overhead_of:(fun _ -> None)
  in
  assert (Vec.total total = b.Core.Bcet.bcet);
  { label = "bcet"; bound = b.Core.Bcet.bcet; rows; overheads; total }

let observed (r : Sim.Machine.core_result) =
  let rows =
    List.map
      (fun ((proc, block), vec) -> { proc; block; count = None; vec })
      r.Sim.Machine.block_attrib
  in
  let counted = sum_vecs (List.map (fun r -> r.vec) rows) in
  let rest = Vec.sub r.Sim.Machine.attrib counted in
  let rows =
    if rest = Vec.zero then rows
    else rows @ [ { proc = "(unattributed)"; block = -1; count = None; vec = rest } ]
  in
  {
    label = "observed";
    bound = r.Sim.Machine.cycles;
    rows = sort_rows rows;
    overheads = [];
    total = r.Sim.Machine.attrib;
  }

(* ---- gap -------------------------------------------------------------- *)

type gap = {
  g_analysis : t;
  g_observed : t;
  diff : Vec.t;
  per_block : ((string * int) * Vec.t) list;
  dominant : Pipeline.Cost.category;
}

let gap ~analysis ~observed =
  let tbl = Hashtbl.create 64 in
  let touch k = if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k () in
  let a = Hashtbl.create 64 and o = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = (r.proc, r.block) in
      touch k;
      Hashtbl.replace a k
        (Vec.add r.vec (Option.value ~default:Vec.zero (Hashtbl.find_opt a k))))
    analysis.rows;
  List.iter
    (fun r ->
      let k = (r.proc, r.block) in
      touch k;
      Hashtbl.replace o k
        (Vec.add r.vec (Option.value ~default:Vec.zero (Hashtbl.find_opt o k))))
    observed.rows;
  let per_block =
    Hashtbl.fold
      (fun k () acc ->
        let va = Option.value ~default:Vec.zero (Hashtbl.find_opt a k)
        and vo = Option.value ~default:Vec.zero (Hashtbl.find_opt o k) in
        (k, Vec.sub va vo) :: acc)
      tbl []
    |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  in
  let diff = Vec.sub analysis.total observed.total in
  {
    g_analysis = analysis;
    g_observed = observed;
    diff;
    per_block;
    dominant = Vec.dominant diff;
  }

(* ---- rendering -------------------------------------------------------- *)

let cat_names = List.map Pipeline.Cost.category_name Pipeline.Cost.categories

let render t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s attribution: %d cycles\n" t.label t.bound;
  Printf.bprintf b "%-16s %8s %6s" "proc" "block" "count";
  List.iter (fun n -> Printf.bprintf b " %9s" n) cat_names;
  Printf.bprintf b " %9s\n" "total";
  let line proc block count v =
    Printf.bprintf b "%-16s %8s %6s" proc block count;
    List.iter
      (fun (_, n) -> Printf.bprintf b " %9d" n)
      (Vec.to_alist v);
    Printf.bprintf b " %9d\n" (Vec.total v)
  in
  List.iter
    (fun r ->
      line r.proc
        (if r.block < 0 then "-" else string_of_int r.block)
        (match r.count with Some n -> string_of_int n | None -> "-")
        r.vec)
    t.rows;
  List.iter (fun (proc, v) -> line proc "overhead" "-" v) t.overheads;
  line "TOTAL" "" "" t.total;
  Buffer.contents b

let render_gap g =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "gap (analysis - observed): %d cycles of pessimism (bound %d, observed %d)\n"
    (Vec.total g.diff) g.g_analysis.bound g.g_observed.bound;
  Printf.bprintf b "%-10s %10s %10s %10s\n" "category" "analysis" "observed"
    "gap";
  List.iter
    (fun c ->
      Printf.bprintf b "%-10s %10d %10d %10d\n"
        (Pipeline.Cost.category_name c)
        (Vec.get g.g_analysis.total c)
        (Vec.get g.g_observed.total c)
        (Vec.get g.diff c))
    Pipeline.Cost.categories;
  Printf.bprintf b "%-10s %10d %10d %10d\n" "total"
    (Vec.total g.g_analysis.total)
    (Vec.total g.g_observed.total)
    (Vec.total g.diff);
  Printf.bprintf b "dominant gap category: %s\n"
    (Pipeline.Cost.category_name g.dominant);
  Buffer.contents b

(* ---- CSV -------------------------------------------------------------- *)

let csv_header = "side,proc,block,count,compute,l1_miss,l2_miss,bus,stall,total\n"

let csv_line buf side proc block count v total =
  Printf.bprintf buf "%s,%s,%s,%s" side proc block count;
  List.iter (fun (_, n) -> Printf.bprintf buf ",%d" n) (Vec.to_alist v);
  Printf.bprintf buf ",%d\n" total

let csv_rows ~side t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      csv_line b side r.proc
        (if r.block < 0 then "" else string_of_int r.block)
        (match r.count with Some n -> string_of_int n | None -> "")
        r.vec (Vec.total r.vec))
    t.rows;
  List.iter
    (fun (proc, v) -> csv_line b side proc "overhead" "" v (Vec.total v))
    t.overheads;
  csv_line b side "TOTAL" "" "" t.total t.bound;
  Buffer.contents b

let gap_csv_rows g =
  let b = Buffer.create 512 in
  List.iter
    (fun ((proc, block), v) ->
      csv_line b "gap" proc
        (if block < 0 then "" else string_of_int block)
        "" v (Vec.total v))
    g.per_block;
  csv_line b "gap" "TOTAL" "" "" g.diff (Vec.total g.diff);
  Buffer.contents b

(* ---- obs export ------------------------------------------------------- *)

let emit_counters ~side t =
  let args_of v =
    List.map
      (fun (c, n) -> (Pipeline.Cost.category_name c, Obs.Event.Int n))
      (Vec.to_alist v)
  in
  let name = "attrib." ^ side in
  List.iter
    (fun r -> Obs.counter ~cat:"attrib" ~args:(args_of r.vec) name)
    t.rows;
  List.iter
    (fun (_, v) -> Obs.counter ~cat:"attrib" ~args:(args_of v) name)
    t.overheads;
  Obs.counter ~cat:"attrib" ~args:(args_of t.total) (name ^ ".total")
