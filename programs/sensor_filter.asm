; Three-tap moving-average over a sensor ring buffer, then a threshold
; check writing an actuator command to I/O. Exercises data caching,
; typed I/O accesses and an operating-mode style branch.
main:
  li r10, 16          ; samples
  li r1, 0
fill:
  muli r2, r1, 3
  st.d r2, 0(r1)
  addi r1, r1, 1
  blt r1, r10, fill
  li r1, 2
  li r9, 0            ; accumulated alarm count
scan:
  ld.d r2, 0(r1)
  subi r3, r1, 1
  ld.d r4, 0(r3)
  subi r3, r1, 2
  ld.d r5, 0(r3)
  add r2, r2, r4
  add r2, r2, r5
  li r6, 60
  blt r2, r6, ok
  addi r9, r9, 1
ok:
  addi r1, r1, 1
  blt r1, r10, scan
  st.io r9, 0(r0)
  halt
