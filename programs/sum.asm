; Sum the integers 1..N (N in r1). A minimal analyzable task:
; the loop bound is inferred automatically from the counter.
main:
  li r1, 25
  li r2, 0
loop:
  add r2, r2, r1
  subi r1, r1, 1
  bne r1, r0, loop
  halt
