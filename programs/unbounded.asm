; Input-dependent loop: the analyzer must refuse this program unless a
; loop bound annotation is supplied (see examples/annotations.ml).
main:
  ld.io r1, 0(r0)
loop:
  subi r1, r1, 1
  bne r1, r0, loop
  halt
